"""Behaviour-level properties of individual indexes beyond golden answers:

cost shapes the paper reports (who computes fewer distances, who touches
fewer pages), storage accounting, category flags, and index-specific
mechanics (EPT group structure, M-index cluster splits, SPB discretisation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AESA,
    CostCounters,
    EPT,
    EPTStar,
    LAESA,
    MIndex,
    MIndexStar,
    MetricSpace,
    SPBTree,
    make_la,
    make_words,
    select_pivots,
)
from repro.bench.runner import build_index

from conftest import fresh_index


@pytest.fixture(scope="module")
def la_dataset():
    return make_la(600, seed=31)


@pytest.fixture(scope="module")
def la_pivots(la_dataset):
    return select_pivots(MetricSpace(la_dataset), 4, strategy="hfi", seed=2)


def _query_compdists(index, q, radius) -> int:
    counters = index.space.counters
    before = counters.distance_computations
    index.range_query(q, radius)
    return counters.distance_computations - before


class TestCostShapes:
    def test_aesa_fewest_compdists(self, la_dataset, la_pivots):
        """AESA's full table should beat LAESA's pivot table on compdists."""
        q = la_dataset[17]
        aesa = AESA.build(MetricSpace(la_dataset, CostCounters()))
        laesa = LAESA.build(MetricSpace(la_dataset, CostCounters()), la_pivots)
        assert _query_compdists(aesa, q, 500.0) <= _query_compdists(
            laesa, q, 500.0
        )

    def test_pivot_filtering_beats_linear_scan(self, la_dataset, la_pivots):
        """Any pivot index must compute far fewer distances than n."""
        laesa = LAESA.build(MetricSpace(la_dataset, CostCounters()), la_pivots)
        compdists = _query_compdists(laesa, la_dataset[3], 300.0)
        assert compdists < len(la_dataset) / 2

    def test_more_pivots_prune_more(self, la_dataset):
        """Fig. 18: compdists drop as |P| grows."""
        q = la_dataset[9]
        costs = []
        for n_pivots in (1, 3, 7):
            pivots = select_pivots(
                MetricSpace(la_dataset), n_pivots, strategy="hfi", seed=2
            )
            laesa = LAESA.build(MetricSpace(la_dataset, CostCounters()), pivots)
            costs.append(_query_compdists(laesa, q, 400.0))
        assert costs[-1] <= costs[0]

    def test_validation_reduces_compdists(self, la_dataset, la_pivots):
        """Lemma 4 saves verifications at large radii (paper Section 6.5.1)."""
        plain = LAESA.build(
            MetricSpace(la_dataset, CostCounters()), la_pivots, use_validation=False
        )
        validated = LAESA.build(
            MetricSpace(la_dataset, CostCounters()), la_pivots, use_validation=True
        )
        q = la_dataset[3]
        radius = 6000.0  # large radius: many validatable answers
        assert _query_compdists(validated, q, radius) <= _query_compdists(
            plain, q, radius
        )
        assert validated.range_query(q, radius) == plain.range_query(q, radius)


class TestEPT:
    def test_group_structure(self, la_dataset):
        space = MetricSpace(la_dataset, CostCounters())
        ept = EPT.build(space, n_groups=3, group_size=4, seed=1)
        assert ept._pivot_idx.shape == (len(la_dataset), 3)
        # each group's picks stay within the group's pivot block
        for j in range(3):
            block = ept._pivot_idx[:, j]
            assert block.min() >= j * 4 and block.max() < (j + 1) * 4

    def test_stored_distances_are_real(self, la_dataset):
        space = MetricSpace(la_dataset, CostCounters())
        ept = EPT.build(space, n_groups=2, group_size=2, seed=1)
        for o in (0, 10, 99):
            for j in range(2):
                pivot_id = ept.pivot_ids[ept._pivot_idx[o, j]]
                want = la_dataset.distance(la_dataset[o], la_dataset[pivot_id])
                assert ept._pivot_dist[o, j] == pytest.approx(want)

    def test_group_size_estimated_when_omitted(self, la_dataset):
        space = MetricSpace(la_dataset, CostCounters())
        ept = EPT.build(space, n_groups=2, seed=1)
        assert ept.group_size >= 1

    def test_eptstar_build_costlier_but_queries_cheaper(self, la_dataset):
        """The paper's EPT* trade: construction up, query verifications down.

        Verifications = compdists minus the fixed up-front query-to-pivot
        distances (|CP| for EPT*, m*l for EPT) -- at paper scale the up-front
        part is noise; at test scale it would drown the signal.
        """
        c_ept, c_star = CostCounters(), CostCounters()
        ept = EPT.build(MetricSpace(la_dataset, c_ept), n_groups=4, seed=1)
        star = EPTStar.build(
            MetricSpace(la_dataset, c_star), n_pivots_per_object=4, seed=1
        )
        assert c_star.distance_computations > c_ept.distance_computations
        verifications = []
        for index in (ept, star):
            total = 0
            for qi in (3, 50, 200, 400):
                total += _query_compdists(index, la_dataset[qi], 400.0)
                total -= len(index.pivot_ids)
            verifications.append(total)
        assert verifications[1] <= verifications[0] * 1.25


class TestDiskAccounting:
    def test_disk_indexes_report_disk_bytes(self, datasets, pivots):
        for name in ("CPT", "PM-tree", "OmniR-tree", "M-index*", "SPB-tree"):
            index = fresh_index(datasets, pivots, "LA", name)
            storage = index.storage_bytes()
            assert storage["disk"] > 0, name
            assert index.is_disk_based

    def test_memory_indexes_report_no_disk(self, datasets, pivots):
        for name in ("LAESA", "EPT*", "MVPT"):
            index = fresh_index(datasets, pivots, "LA", name)
            storage = index.storage_bytes()
            assert storage["disk"] == 0, name
            assert storage["memory"] > 0, name
            assert not index.is_disk_based

    def test_queries_touch_pages_only_for_disk_indexes(self, datasets, pivots):
        dataset = datasets["LA"]
        q = dataset[0]
        mem = fresh_index(datasets, pivots, "LA", "LAESA")
        mem.space.counters.reset()
        mem.range_query(q, 500.0)
        assert mem.space.counters.page_reads == 0
        disk = fresh_index(datasets, pivots, "LA", "SPB-tree")
        disk.space.counters.reset()
        disk.range_query(q, 500.0)
        assert disk.space.counters.page_reads > 0

    def test_ept_storage_exceeds_laesa(self, la_dataset, la_pivots):
        """EPT stores (pivot id, distance) pairs -> more bytes than LAESA."""
        laesa = LAESA.build(MetricSpace(la_dataset, CostCounters()), la_pivots)
        ept = EPT.build(
            MetricSpace(la_dataset, CostCounters()), n_groups=4, seed=1
        )
        assert (
            ept.storage_bytes()["memory"] > laesa.storage_bytes()["memory"]
        )


class TestMIndexMechanics:
    def test_cluster_split_on_insert(self):
        dataset = make_la(300, seed=41)
        space = MetricSpace(dataset, CostCounters())
        pivots = select_pivots(MetricSpace(dataset), 4, strategy="hfi", seed=3)
        index = MIndex.build(space, pivots, maxnum=32)

        def depth(node):
            if node.is_leaf:
                return 1
            return 1 + max(depth(c) for c in node.children.values())

        assert depth(index.root) > 2  # 300 objects / maxnum 32 forces splits
        q = dataset[0]
        from repro import brute_force_range

        assert index.range_query(q, 700.0) == brute_force_range(
            MetricSpace(dataset), q, 700.0
        )

    def test_star_tracks_mbbs(self, datasets, pivots):
        index = fresh_index(datasets, pivots, "LA", "M-index*")
        leaves = list(index._all_leaves(index.root))
        assert any(leaf.mbb_lows is not None for leaf in leaves)
        for leaf in leaves:
            if leaf.mbb_lows is not None:
                assert np.all(leaf.mbb_lows <= leaf.mbb_highs)

    def test_star_beats_plain_on_knn_work(self):
        """Fig. 15 shape: M-index* does no repeated traversals for kNN."""
        dataset = make_la(1500, seed=42)
        pivots = select_pivots(MetricSpace(dataset), 5, strategy="hfi", seed=3)
        work = {}
        for cls in (MIndex, MIndexStar):
            counters = CostCounters()
            index = cls.build(MetricSpace(dataset, counters), pivots, maxnum=128)
            counters.reset()
            for qi in range(0, 100, 10):
                index.knn_query(dataset[qi], 10)
            work[cls.__name__] = counters.distance_computations
        assert work["MIndexStar"] <= work["MIndex"]


class TestSPBMechanics:
    def test_grid_roundtrip_bounds(self, datasets, pivots):
        index = fresh_index(datasets, pivots, "LA", "SPB-tree")
        mapping = index.mapping
        for object_id in (0, 7, 123):
            vec = mapping.vector(object_id)
            cell = index._grid_cell(vec)
            lows, highs = index._cell_bounds(cell)
            assert np.all(lows <= vec + 1e-9)
            assert np.all(vec <= highs + 1e-9)

    def test_keys_fit_curve(self, datasets, pivots):
        index = fresh_index(datasets, pivots, "LA", "SPB-tree")
        for key, _ in index.btree.items():
            assert 0 <= key <= index.curve.max_key

    def test_zorder_variant_is_correct(self):
        from repro import brute_force_range
        from repro.sfc import ZOrderCurve

        dataset = make_words(300, seed=43)
        pivots = select_pivots(MetricSpace(dataset), 4, strategy="hfi", seed=3)
        space = MetricSpace(dataset, CostCounters())
        index = SPBTree.build(space, pivots, curve_cls=ZOrderCurve)
        q = dataset[9]
        assert index.range_query(q, 4.0) == brute_force_range(
            MetricSpace(dataset), q, 4.0
        )

    def test_coarse_grid_still_correct(self):
        """Fewer bits = weaker pruning but never wrong answers."""
        from repro import brute_force_range

        dataset = make_la(300, seed=44)
        pivots = select_pivots(MetricSpace(dataset), 3, strategy="hfi", seed=3)
        for bits in (2, 4, 12):
            space = MetricSpace(dataset, CostCounters())
            index = SPBTree.build(space, pivots, bits=bits)
            q = dataset[5]
            assert index.range_query(q, 600.0) == brute_force_range(
                MetricSpace(dataset), q, 600.0
            )

    def test_finer_grid_prunes_better(self):
        dataset = make_la(600, seed=45)
        pivots = select_pivots(MetricSpace(dataset), 4, strategy="hfi", seed=3)
        costs = []
        for bits in (2, 8):
            counters = CostCounters()
            index = SPBTree.build(MetricSpace(dataset, counters), pivots, bits=bits)
            counters.reset()
            index.range_query(dataset[3], 400.0)
            costs.append(counters.distance_computations)
        assert costs[1] <= costs[0]


class TestBuilderFactory:
    def test_unknown_index_rejected(self, datasets, pivots):
        space = MetricSpace(datasets["LA"], CostCounters())
        with pytest.raises(ValueError):
            build_index("NoSuchIndex", space, pivots["LA"])

    def test_page_size_rule(self):
        from repro.bench.runner import _page_size_for

        assert _page_size_for("CPT", "Color") == 40960
        assert _page_size_for("PM-tree", "Synthetic") == 40960
        assert _page_size_for("CPT", "LA") == 4096
        assert _page_size_for("SPB-tree", "Color") == 4096
