"""Batch query layer: batch answers == sequential answers == brute force.

Parametrised over every (dataset family, index) combination of the study,
the same grid as the golden suite.  The batch API contract is exact: for
every index, ``range_query_many(qs, r)[i] == range_query(qs[i], r)`` and
``knn_query_many(qs, k)[i] == knn_query(qs[i], k)`` bit-for-bit (canonical
(distance, id) tie-breaking makes the k-NN answer order-independent), plus
edge cases: empty batches, k > n, foreign query objects, and counter
attribution parity for the vectorized table overrides.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    MetricSpace,
    ShardedIndex,
    brute_force_knn_many,
    brute_force_range_many,
    select_pivots,
)
from repro.tables import LAESA

from conftest import DATASET_MAKERS, RADIUS, indexes_for

CASES = [
    (dataset_name, index_name)
    for dataset_name in DATASET_MAKERS
    for index_name in indexes_for(dataset_name)
]

# indexes with genuinely vectorized batch overrides (the rest exercise the
# sequential default of the MetricIndex base class)
VECTORIZED = ("AESA", "LAESA", "EPT", "EPT*", "CPT")


def _queries_for(dataset):
    return [dataset[3], dataset[len(dataset) // 2], dataset[len(dataset) - 1]]


@pytest.mark.parametrize("dataset_name,index_name", CASES)
class TestBatchEquivalence:
    def test_range_query_many(self, datasets, built_indexes, dataset_name, index_name):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        queries = _queries_for(dataset)
        radius = RADIUS[dataset_name]
        batch = index.range_query_many(queries, radius)
        sequential = [index.range_query(q, radius) for q in queries]
        assert batch == sequential, f"{index_name} on {dataset_name}"
        golden = brute_force_range_many(MetricSpace(dataset), queries, radius)
        assert batch == golden, f"{index_name} on {dataset_name} vs brute force"

    def test_knn_query_many(self, datasets, built_indexes, dataset_name, index_name):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        queries = _queries_for(dataset)
        for k in (1, 8):
            batch = index.knn_query_many(queries, k)
            sequential = [index.knn_query(q, k) for q in queries]
            assert batch == sequential, f"{index_name} on {dataset_name}, k={k}"
            golden = brute_force_knn_many(MetricSpace(dataset), queries, k)
            assert batch == golden, f"{index_name} on {dataset_name}, k={k} vs brute force"

    def test_empty_batch(self, datasets, built_indexes, dataset_name, index_name):
        index = built_indexes(dataset_name, index_name)
        assert index.range_query_many([], RADIUS[dataset_name]) == []
        assert index.knn_query_many([], 3) == []

    def test_k_larger_than_dataset(
        self, datasets, built_indexes, dataset_name, index_name
    ):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        queries = [dataset[0], dataset[1]]
        k = len(dataset) + 25
        batch = index.knn_query_many(queries, k)
        sequential = [index.knn_query(q, k) for q in queries]
        assert batch == sequential
        assert all(len(answer) == len(dataset) for answer in batch)


@pytest.mark.parametrize("dataset_name", list(DATASET_MAKERS))
class TestBatchEdgeCases:
    def test_foreign_query_objects(self, datasets, built_indexes, dataset_name):
        """Batch queries need not be dataset members."""
        dataset = datasets[dataset_name]
        if dataset.is_vector:
            q = np.asarray(dataset[0]) * 0.5 + np.asarray(dataset[1]) * 0.5
            if dataset.distance.is_discrete:
                q = np.rint(q)
        else:
            q = dataset[0] + "x"
        queries = [q, dataset[2]]
        radius = RADIUS[dataset_name]
        for index_name in VECTORIZED:
            if index_name not in indexes_for(dataset_name):
                continue
            index = built_indexes(dataset_name, index_name)
            assert index.range_query_many(queries, radius) == [
                index.range_query(p, radius) for p in queries
            ]
            assert index.knn_query_many(queries, 5) == [
                index.knn_query(p, 5) for p in queries
            ]

    def test_single_query_batch(self, datasets, built_indexes, dataset_name):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, "LAESA")
        q = dataset[7]
        radius = RADIUS[dataset_name]
        assert index.range_query_many([q], radius) == [index.range_query(q, radius)]
        assert index.knn_query_many([q], 4) == [index.knn_query(q, 4)]


class TestBatchCounterAttribution:
    """The batch layer must not hide or inflate the paper's cost metrics."""

    def _fresh_laesa(self, datasets, dataset_name="LA"):
        dataset = datasets[dataset_name]
        space = MetricSpace(dataset, CostCounters())
        pivots = select_pivots(MetricSpace(dataset), 4, strategy="hfi", seed=3)
        return space, LAESA.build(space, pivots)

    def test_range_compdists_match_sequential(self, datasets):
        space, index = self._fresh_laesa(datasets)
        dataset = datasets["LA"]
        queries = _queries_for(dataset)
        radius = RADIUS["LA"]

        space.counters.reset()
        for q in queries:
            index.range_query(q, radius)
        sequential = space.counters.distance_computations

        space.counters.reset()
        index.range_query_many(queries, radius)
        batch = space.counters.distance_computations

        # the q x l query-pivot matrix costs exactly q*l either way, and
        # both paths verify the identical survivor sets
        assert batch == sequential

    def test_knn_compdists_not_worse_than_sequential(self, datasets):
        space, index = self._fresh_laesa(datasets)
        dataset = datasets["LA"]
        queries = _queries_for(dataset)

        space.counters.reset()
        for q in queries:
            index.knn_query(q, 10)
        sequential = space.counters.distance_computations

        space.counters.reset()
        index.knn_query_many(queries, 10)
        batch = space.counters.distance_computations

        # Regression guard on this fixed, deterministic workload: best-first
        # verification beats the storage-order scan here.  This is NOT a
        # universal invariant (chunk granularity verifies k candidates
        # before any radius exists, so adversarial data can flip it).
        assert batch <= sequential


class TestShardedBatch:
    def test_sharded_batch_fanout(self, datasets):
        dataset = datasets["LA"]
        space = MetricSpace(dataset, CostCounters())

        def build_shard(sub_space):
            pivots = select_pivots(
                MetricSpace(sub_space.dataset), 3, strategy="hfi", seed=3
            )
            return LAESA.build(sub_space, pivots)

        sharded = ShardedIndex.build(space, build_shard, n_shards=3, seed=1)
        queries = _queries_for(dataset)
        radius = RADIUS["LA"]
        assert sharded.range_query_many(queries, radius) == [
            sharded.range_query(q, radius) for q in queries
        ]
        assert sharded.knn_query_many(queries, 6) == [
            sharded.knn_query(q, 6) for q in queries
        ]
        golden = brute_force_range_many(MetricSpace(dataset), queries, radius)
        assert sharded.range_query_many(queries, radius) == golden
        # ascending shard id lists make the local canonical tie-breaking
        # globally canonical, so merged kNN equals brute force bit-for-bit
        golden_knn = brute_force_knn_many(MetricSpace(dataset), queries, 6)
        assert sharded.knn_query_many(queries, 6) == golden_knn

    def test_sharded_batch_with_executor(self, datasets):
        from concurrent.futures import ThreadPoolExecutor

        dataset = datasets["LA"]
        space = MetricSpace(dataset, CostCounters())

        def build_shard(sub_space):
            pivots = select_pivots(
                MetricSpace(sub_space.dataset), 3, strategy="hfi", seed=3
            )
            return LAESA.build(sub_space, pivots)

        with ThreadPoolExecutor(max_workers=2) as pool:
            sharded = ShardedIndex.build(
                space, build_shard, n_shards=4, seed=1, executor=pool
            )
            queries = _queries_for(dataset)
            radius = RADIUS["LA"]
            assert sharded.range_query_many(queries, radius) == [
                sharded.range_query(q, radius) for q in queries
            ]
            assert sharded.knn_query_many(queries, 6) == [
                sharded.knn_query(q, 6) for q in queries
            ]
