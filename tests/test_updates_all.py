"""Update correctness: delete + insert keeps every index's answers exact.

Mirrors the paper's Table 6 update operation (delete a specific object, then
insert it back) and additionally leaves objects deleted to verify they stop
appearing in answers.
"""

from __future__ import annotations

import pytest

from repro import MetricSpace, UnsupportedOperation, brute_force_knn, brute_force_range

from conftest import DATASET_MAKERS, RADIUS, fresh_index, indexes_for

UPDATABLE_CASES = [
    (dataset_name, index_name)
    for dataset_name in ("LA", "Words")
    for index_name in indexes_for(dataset_name)
    if index_name != "AESA"  # static by design
]


@pytest.mark.parametrize("dataset_name,index_name", UPDATABLE_CASES)
def test_delete_reinsert_roundtrip(datasets, pivots, dataset_name, index_name):
    dataset = datasets[dataset_name]
    index = fresh_index(datasets, pivots, dataset_name, index_name)
    victims = (5, 17, 44, 123, 250)
    for object_id in victims:
        index.delete(object_id)
        index.insert(dataset[object_id], object_id=object_id)
    q = dataset[2]
    radius = RADIUS[dataset_name]
    assert index.range_query(q, radius) == brute_force_range(
        MetricSpace(dataset), q, radius
    )


@pytest.mark.parametrize("dataset_name,index_name", UPDATABLE_CASES)
def test_deleted_objects_disappear(datasets, pivots, dataset_name, index_name):
    dataset = datasets[dataset_name]
    index = fresh_index(datasets, pivots, dataset_name, index_name)
    gone = {30, 31, 32, 99}
    for object_id in gone:
        index.delete(object_id)
    q = dataset[2]
    radius = RADIUS[dataset_name]
    got = index.range_query(q, radius)
    want = [
        i for i in brute_force_range(MetricSpace(dataset), q, radius) if i not in gone
    ]
    assert got == want
    knn_ids = {n.object_id for n in index.knn_query(q, 10)}
    assert not (knn_ids & gone)


@pytest.mark.parametrize("dataset_name", ["LA", "Words"])
def test_delete_missing_raises(datasets, pivots, dataset_name):
    for index_name in ("LAESA", "MVPT", "SPB-tree", "M-index*"):
        index = fresh_index(datasets, pivots, dataset_name, index_name)
        with pytest.raises(KeyError):
            index.delete(999_999)


def test_aesa_is_static(datasets, pivots):
    index = fresh_index(datasets, pivots, "LA", "AESA")
    with pytest.raises(UnsupportedOperation):
        index.insert(datasets["LA"][0])


@pytest.mark.parametrize("index_name", ["LAESA", "EPT*", "SPB-tree", "OmniR-tree"])
def test_insert_fresh_object_gets_new_id(datasets, pivots, index_name):
    """Inserting without an explicit id appends to the dataset."""
    import numpy as np

    from repro import CostCounters, make_la, select_pivots
    from repro.bench.runner import build_index

    dataset = make_la(120, seed=21)  # private dataset: test mutates it
    space = MetricSpace(dataset, CostCounters())
    pivots_local = select_pivots(MetricSpace(dataset), 3, strategy="hfi", seed=0)
    index = build_index(index_name, space, pivots_local, workload_name="LA")
    new_obj = np.array([1234.0, 5678.0])
    new_id = index.insert(new_obj)
    assert new_id == 120
    assert len(dataset) == 121
    hits = index.range_query(new_obj, 0.5)
    assert new_id in hits
