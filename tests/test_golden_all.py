"""The repo's central invariant: every index answers exactly like brute force.

Parametrised over all (dataset family, index) combinations the paper
evaluates, for both MRQ and MkNNQ, plus randomised radii/k and edge cases
(r=0, k=1, k>n, query not in the dataset).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MetricSpace, brute_force_knn, brute_force_range

from conftest import DATASET_MAKERS, RADIUS, indexes_for

CASES = [
    (dataset_name, index_name)
    for dataset_name in DATASET_MAKERS
    for index_name in indexes_for(dataset_name)
]


def _knn_distances(neighbors):
    return [round(n.distance, 6) for n in neighbors]


@pytest.mark.parametrize("dataset_name,index_name", CASES)
class TestGoldenEquivalence:
    def test_range_query(self, datasets, built_indexes, dataset_name, index_name):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        reference = MetricSpace(dataset)
        radius = RADIUS[dataset_name]
        for qi in (0, len(dataset) // 3, len(dataset) - 1):
            q = dataset[qi]
            got = index.range_query(q, radius)
            want = brute_force_range(reference, q, radius)
            assert got == want, f"{index_name} on {dataset_name}, query {qi}"

    def test_range_query_zero_radius(
        self, datasets, built_indexes, dataset_name, index_name
    ):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        q = dataset[5]
        got = index.range_query(q, 0.0)
        want = brute_force_range(MetricSpace(dataset), q, 0.0)
        assert got == want  # at least the object itself (plus exact twins)

    def test_knn_query(self, datasets, built_indexes, dataset_name, index_name):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        reference = MetricSpace(dataset)
        for qi, k in ((1, 1), (7, 10), (11, 25)):
            q = dataset[qi]
            got = _knn_distances(index.knn_query(q, k))
            want = _knn_distances(brute_force_knn(reference, q, k))
            assert got == want, f"{index_name} on {dataset_name}, k={k}"

    def test_knn_result_ids_have_correct_distances(
        self, datasets, built_indexes, dataset_name, index_name
    ):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        q = dataset[3]
        for n in index.knn_query(q, 5):
            assert n.distance == pytest.approx(
                dataset.distance(q, dataset[n.object_id]), abs=1e-9
            )

    def test_random_radii(self, datasets, built_indexes, dataset_name, index_name):
        dataset = datasets[dataset_name]
        index = built_indexes(dataset_name, index_name)
        reference = MetricSpace(dataset)
        rng = np.random.default_rng(hash((dataset_name, index_name)) % 2**32)
        base = RADIUS[dataset_name]
        for _ in range(3):
            qi = int(rng.integers(0, len(dataset)))
            radius = float(base * rng.uniform(0.1, 2.0))
            if dataset.distance.is_discrete:
                radius = float(np.floor(radius))
            q = dataset[qi]
            assert index.range_query(q, radius) == brute_force_range(
                reference, q, radius
            )


@pytest.mark.parametrize("dataset_name", list(DATASET_MAKERS))
class TestQueryEdgeCases:
    """Edge cases run on one representative per category (fast)."""

    REPRESENTATIVES = ("LAESA", "MVPT", "SPB-tree")

    def test_k_larger_than_dataset(self, datasets, built_indexes, dataset_name):
        dataset = datasets[dataset_name]
        for index_name in self.REPRESENTATIVES:
            index = built_indexes(dataset_name, index_name)
            got = index.knn_query(dataset[0], len(dataset) + 50)
            assert len(got) == len(dataset)

    def test_foreign_query_object(self, datasets, built_indexes, dataset_name):
        """Query objects need not be dataset members."""
        dataset = datasets[dataset_name]
        if dataset.is_vector:
            q = np.asarray(dataset[0]) * 0.5 + np.asarray(dataset[1]) * 0.5
            if dataset.distance.is_discrete:
                q = np.rint(q)
        else:
            q = dataset[0] + "x"
        reference = MetricSpace(dataset)
        radius = RADIUS[dataset_name]
        for index_name in self.REPRESENTATIVES:
            index = built_indexes(dataset_name, index_name)
            assert index.range_query(q, radius) == brute_force_range(
                reference, q, radius
            )
            got = _knn_distances(index.knn_query(q, 7))
            want = _knn_distances(brute_force_knn(reference, q, 7))
            assert got == want
