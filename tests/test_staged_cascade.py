"""Staged pruning cascade: exactness, Ptolemaic stage, snapshots, service.

The engine's contract (ISSUE 10): the staged cascade -- pruning-power
prefix, refine, Lemma 4 validation, Ptolemaic filter -- must answer
bit-for-bit like the single-shot filter and like brute force, for every
metric; non-Ptolemaic metrics must skip stage 4 automatically; and the
whole pruner must survive snapshot save/restore and the live dispatcher.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    Dataset,
    HammingDistance,
    L2,
    MetricSpace,
    QuadraticFormDistance,
    brute_force_knn_many,
    brute_force_range_many,
    load_index,
    save_index,
    select_pivots,
)
from repro.core.pivot_filter import (
    lower_bound_many,
    ptolemaic_lower_bound_many,
    ptolemaic_pairs,
    upper_bound_many,
)
from repro.core.staged import PerObjectStagedPruner, StagedPruner
from repro.service import QueryService
from repro.tables.aesa import AESA
from repro.tables.cpt import CPT
from repro.tables.ept import EPT, EPTStar
from repro.tables.laesa import LAESA

N = 120
N_PIVOTS = 5


def _l2_space(seed: int = 7) -> MetricSpace:
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(N, 6))
    return MetricSpace(Dataset(points, L2, name="l2"), CostCounters())


def _quadratic_space(seed: int = 7) -> MetricSpace:
    rng = np.random.default_rng(seed)
    dim = 5
    basis = rng.normal(size=(dim, dim))
    matrix = basis @ basis.T + dim * np.eye(dim)
    points = rng.uniform(0, 10, size=(N, dim))
    dist = QuadraticFormDistance(matrix)
    return MetricSpace(Dataset(points, dist, name="qf"), CostCounters())


def _hamming_space(seed: int = 7) -> MetricSpace:
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 2, size=(N, 24))
    return MetricSpace(Dataset(points, HammingDistance(), name="ham"), CostCounters())


SPACES = {"l2": _l2_space, "quadratic": _quadratic_space, "hamming": _hamming_space}
# moderate-selectivity radii, pre-picked per space family
RADII = {"l2": 55.0, "quadratic": 25.0, "hamming": 9.0}


def _build(index_name: str, space: MetricSpace, **kwargs):
    pivot_ids = select_pivots(space, N_PIVOTS, strategy="hfi", seed=3)
    if index_name == "LAESA":
        return LAESA.build(space, pivot_ids, **kwargs)
    if index_name == "CPT":
        return CPT.build(space, pivot_ids, **kwargs)
    if index_name == "EPT":
        return EPT.build(space, n_groups=N_PIVOTS, seed=3, **kwargs)
    if index_name == "EPT*":
        return EPTStar.build(space, n_pivots_per_object=N_PIVOTS, seed=3, **kwargs)
    if index_name == "AESA":
        return AESA.build(space, **kwargs)
    raise ValueError(index_name)


def _queries(space: MetricSpace, n: int = 6, seed: int = 99):
    rng = np.random.default_rng(seed)
    ids = rng.choice(len(space), size=n, replace=False)
    return [space.dataset[int(i)] for i in ids]


def _answers(index, queries, radius, k):
    return (
        index.range_query_many(queries, radius),
        [
            [(nb.object_id, nb.distance) for nb in row]
            for row in index.knn_query_many(queries, k)
        ],
    )


@pytest.mark.parametrize("space_name", sorted(SPACES))
@pytest.mark.parametrize("index_name", ["LAESA", "CPT", "EPT", "EPT*", "AESA"])
def test_staged_equals_single_shot_equals_brute_force(space_name, index_name):
    """The tentpole invariant, per metric x index family.

    Three builds of the same index -- staged auto, staged triangle, and
    the single-shot reference path -- must all return brute-force answers
    for MRQ and MkNNQ.  Hamming runs too: its build must silently skip
    the Ptolemaic machinery (is_ptolemaic=False) and still be exact.
    """
    radius, k = RADII[space_name], 10
    space = SPACES[space_name]()
    queries = _queries(space)
    expected_range = brute_force_range_many(space, queries, radius)
    expected_knn = [
        [(nb.object_id, nb.distance) for nb in row]
        for row in brute_force_knn_many(space, queries, k)
    ]

    variants = [{"bounds": "auto"}, {"bounds": "triangle"}]
    if index_name != "AESA":  # AESA has no staged/single-shot split
        variants.append({"bounds": "auto", "staged": False})
    for kwargs in variants:
        index = _build(index_name, SPACES[space_name](), **kwargs)
        got_range, got_knn = _answers(index, queries, radius, k)
        assert got_range == expected_range, (index_name, kwargs)
        assert got_knn == expected_knn, (index_name, kwargs)
        # sequential single-query calls agree with the batch path
        assert index.range_query(queries[0], radius) == expected_range[0]


@pytest.mark.parametrize("space_name", ["l2", "quadratic"])
def test_ptolemaic_enabled_on_declaring_metrics(space_name):
    index = _build("LAESA", SPACES[space_name](), bounds="auto")
    assert index.pruner.use_ptolemaic
    assert index.pruner.pair_matrix is not None
    assert index.pruner.pairs.shape[0] > 0


def test_hamming_skips_ptolemaic_stage():
    """auto never turns the bound on unsoundly: no pair matrix, no pairs."""
    index = _build("LAESA", _hamming_space(), bounds="auto")
    assert not index.pruner.use_ptolemaic
    assert index.pruner.pair_matrix is None
    assert index.pruner.pairs.shape[0] == 0


def test_ptolemaic_bounds_mode_rejected_for_non_ptolemaic_metric():
    with pytest.raises(ValueError, match="is_ptolemaic"):
        _build("LAESA", _hamming_space(), bounds="ptolemaic")
    with pytest.raises(ValueError, match="is_ptolemaic"):
        _build("EPT", _hamming_space(), bounds="ptolemaic")
    with pytest.raises(ValueError, match="is_ptolemaic"):
        _build("AESA", _hamming_space(), bounds="ptolemaic")


def test_unknown_bounds_mode_rejected():
    with pytest.raises(ValueError, match="bounds"):
        StagedPruner(np.arange(3), 1, bounds="bogus")
    with pytest.raises(ValueError, match="bounds"):
        PerObjectStagedPruner(np.arange(3), 1, bounds="bogus")
    with pytest.raises(ValueError, match="bounds"):
        _build("AESA", _l2_space(), bounds="bogus")


def test_ptolemaic_never_loosens_the_survivor_mask():
    """auto's survivors are a subset of triangle's, and stage 4 fires."""
    space = _l2_space()
    queries = _queries(space, n=8)
    tri = _build("LAESA", _l2_space(), bounds="triangle")
    pto = _build("LAESA", _l2_space(), bounds="auto")
    qmat = tri.mapping.map_query_many(queries)
    radius = RADII["l2"]
    tri_alive, _ = tri.pruner.masks_many_queries(qmat, tri._rows, radius)
    counters = CostCounters()
    pto_alive, _ = pto.pruner.masks_many_queries(
        qmat, pto._rows, radius, counters=counters
    )
    assert not (pto_alive & ~tri_alive).any()
    snap = counters.snapshot()
    assert snap.prune_ptolemaic == int(tri_alive.sum() - pto_alive.sum())
    assert snap.prune_ptolemaic > 0  # L2 at this radius: the stage pays


def test_prune_stage_counters_flow_to_cost_snapshot():
    space = _l2_space()
    index = _build("LAESA", space, bounds="auto", use_validation=True)
    space = index.space
    space.counters.reset()
    queries = _queries(space)
    index.range_query_many(queries, RADII["l2"])
    snap = space.counters.snapshot()
    assert snap.prune_prefix > 0
    assert snap.prune_prefix + snap.prune_refine + snap.prune_ptolemaic > 0
    # sequential path records through the same cascade
    before = snap
    index.range_query(queries[0], RADII["l2"])
    delta = space.counters.snapshot() - before
    assert delta.prune_prefix + delta.prune_refine >= 0


def test_validation_decides_only_survivors():
    """Satellite: Lemma 4 runs cell-wise on undecided cells, never the
    full table -- validated and surviving masks are disjoint and their
    union is bounded by what stage 1/2 left alive."""
    space = _l2_space()
    index = _build("LAESA", space, bounds="auto", use_validation=True)
    queries = _queries(index.space)
    qmat = index.mapping.map_query_many(queries)
    # a generous radius: Lemma 4's min_i (d(q,p_i) + d(o,p_i)) needs head
    # room over the true distance before it can accept answers unverified
    radius = 160.0
    survivors, validated = index.pruner.masks_many_queries(
        qmat, index._rows, radius, validate=True
    )
    assert not (survivors & validated).any()
    assert validated.any()


# -- zero-size normalization (satellite) --------------------------------------


def test_lower_bound_many_zero_size_shapes():
    q = np.asarray([1.0, 2.0])
    for empty in (np.empty((0, 2)), np.empty(0), np.float64(3.0)):
        out = lower_bound_many(q, empty)
        assert out.shape == (0,)
        assert out.dtype == np.float64
        out = upper_bound_many(q, empty)
        assert out.shape == (0,)
        assert out.dtype == np.float64


def test_masks_on_empty_tables():
    pruner = StagedPruner(np.arange(3), 1)
    alive, validated = pruner.masks_many_queries(
        np.empty((0, 3)), np.empty((0, 3)), 1.0
    )
    assert alive.shape == (0, 0) and validated.shape == (0, 0)
    alive, validated = pruner.masks_many(np.asarray([1.0, 2.0, 3.0]), np.empty(0), 1.0)
    assert alive.shape == (0,) and validated.shape == (0,)


def test_ptolemaic_pairs_skip_degenerate_denominators():
    pair = np.array([[0.0, 0.0, 3.0], [0.0, 0.0, 4.0], [3.0, 4.0, 0.0]])
    pairs = ptolemaic_pairs(pair, budget=8)
    assert all(pair[i, j] > 0 for i, j in pairs)
    assert [tuple(p) for p in pairs] == [(0, 2), (1, 2)]


def test_ptolemaic_bound_is_a_true_lower_bound():
    space = _l2_space()
    index = _build("LAESA", space, bounds="auto")
    space = index.space
    q = _queries(space, n=1)[0]
    qdists = index.mapping.map_query(q)
    true_d = space.distance.one_to_many(q, space.dataset.objects)
    bounds = ptolemaic_lower_bound_many(
        qdists, index._rows, index.pruner.pair_matrix, pairs=index.pruner.pairs
    )
    assert (bounds <= true_d + 1e-9).all()


# -- adaptive re-ranking -------------------------------------------------------


def test_adaptive_rerank_keeps_answers_exact():
    space = _l2_space()
    index = _build("LAESA", space, bounds="auto")
    space = index.space
    index.pruner.enable_adaptive(interval=1)
    queries = _queries(space, n=10)
    expected = brute_force_range_many(space, queries, RADII["l2"])
    for q in queries:  # sequential traffic drives per-pivot decided counts
        index.range_query(q, RADII["l2"])
    assert index.pruner.decided_counts.sum() > 0
    assert index.range_query_many(queries, RADII["l2"]) == expected
    stats = index.pruner.stats()
    assert stats["adaptive"] is True
    assert stats["reranks"] == index.pruner.reranks


def test_adaptive_is_off_by_default():
    index = _build("LAESA", _l2_space(), bounds="auto")
    assert not index.pruner.adaptive
    index.range_query(_queries(index.space, n=1)[0], RADII["l2"])
    assert index.pruner.decided_counts.sum() == 0  # no bookkeeping unless asked


# -- snapshots and the live service -------------------------------------------


@pytest.mark.parametrize("index_name", ["LAESA", "EPT*"])
def test_staged_pruner_survives_snapshot_roundtrip(tmp_path, index_name):
    space = _l2_space()
    index = _build(index_name, space, bounds="auto")
    queries = _queries(index.space)
    expected = _answers(index, queries, RADII["l2"], 5)
    path = tmp_path / "staged.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert counters.snapshot().distance_computations == 0
    assert restored.pruner.use_ptolemaic
    assert restored.pruner.stats() == index.pruner.stats()
    assert _answers(restored, queries, RADII["l2"], 5) == expected


def test_service_dispatcher_with_adaptive_pruning(tmp_path):
    space = _l2_space()
    index = _build("LAESA", space, bounds="auto")
    space = index.space
    queries = _queries(space, n=8)
    expected = brute_force_range_many(space, queries, RADII["l2"])
    with QueryService(index, cache_size=0, adaptive_pruning=True) as service:
        assert index.pruner.adaptive
        got = [service.range_query(q, RADII["l2"]) for q in queries]
        stats = service.stats()
    assert got == expected
    assert stats["prune_stages"]["prefix"] > 0
    (pruning,) = stats["pruning"]
    assert pruning["index"] == "LAESA"
    assert pruning["ptolemaic"] is True
    assert pruning["adaptive"] is True


def test_service_snapshot_restore_keeps_prune_stats(tmp_path):
    index = _build("LAESA", _l2_space(), bounds="auto")
    path = tmp_path / "svc.snap"
    save_index(index, path)
    with QueryService.from_snapshot(str(path), adaptive_pruning=True) as service:
        q = _queries(service.index.space, n=1)[0]
        service.range_query(q, RADII["l2"])
        stats = service.stats()
    assert stats["prune_stages"]["prefix"] > 0
    assert stats["pruning"][0]["adaptive"] is True
