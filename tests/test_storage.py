"""Storage substrate: page store, buffer pool, pager, RAF."""

from __future__ import annotations

import pytest

from repro.core.counters import CostCounters
from repro.storage import BufferPool, Pager, PageStore, RandomAccessFile


class TestPageStore:
    def test_write_read_roundtrip(self):
        store = PageStore(page_size=256)
        page = store.allocate()
        store.write(page, {"a": [1, 2, 3]})
        assert store.read(page) == {"a": [1, 2, 3]}

    def test_counts_accesses(self):
        counters = CostCounters()
        store = PageStore(page_size=256, counters=counters)
        page = store.allocate()
        store.write(page, "x")
        store.read(page)
        assert counters.page_writes == 1
        assert counters.page_reads == 1

    def test_oversized_node_spans_pages(self):
        counters = CostCounters()
        store = PageStore(page_size=64, counters=counters)
        page = store.allocate()
        store.write(page, list(range(200)))  # pickles to > 64 bytes
        assert counters.page_writes > 1
        counters.reset()
        store.read(page)
        assert counters.page_reads == store.pages_spanned(store.page_bytes(page))

    def test_read_unallocated(self):
        store = PageStore()
        with pytest.raises(KeyError):
            store.read(42)

    def test_read_unwritten(self):
        store = PageStore()
        page = store.allocate()
        with pytest.raises(KeyError):
            store.read(page)

    def test_free(self):
        store = PageStore()
        page = store.allocate()
        store.write(page, "x")
        store.free(page)
        with pytest.raises(KeyError):
            store.read(page)

    def test_total_bytes_rounds_to_pages(self):
        store = PageStore(page_size=100)
        page = store.allocate()
        store.write(page, "tiny")
        assert store.total_bytes() == 100

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=0)


class TestBufferPool:
    def _store(self):
        counters = CostCounters()
        return PageStore(page_size=256, counters=counters), counters

    def test_read_hit_costs_nothing(self):
        store, counters = self._store()
        pool = BufferPool(store, capacity_bytes=4096)
        page = store.allocate()
        pool.write(page, "data")
        counters.reset()
        assert pool.read(page) == "data"
        assert counters.page_reads == 0
        assert pool.hits == 1

    def test_miss_reads_through(self):
        store, counters = self._store()
        page = store.allocate()
        store.write(page, "cold")
        pool = BufferPool(store, capacity_bytes=4096)
        counters.reset()
        assert pool.read(page) == "cold"
        assert counters.page_reads == 1
        assert pool.misses == 1

    def test_lru_eviction_writes_dirty(self):
        store, counters = self._store()
        pool = BufferPool(store, capacity_bytes=80)
        pages = [store.allocate() for _ in range(6)]
        counters.reset()
        for i, page in enumerate(pages):
            pool.write(page, f"value-{i}")
        # small capacity: early pages evicted and flushed
        assert counters.page_writes > 0
        pool.flush()
        for i, page in enumerate(pages):
            assert store.read(page) == f"value-{i}"

    def test_zero_capacity_is_write_through(self):
        store, counters = self._store()
        pool = BufferPool(store, capacity_bytes=0)
        page = store.allocate()
        counters.reset()
        pool.write(page, "x")
        assert counters.page_writes == 1
        pool.read(page)
        assert counters.page_reads == 1

    def test_lru_order(self):
        store, counters = self._store()
        pool = BufferPool(store, capacity_bytes=2 * 30)
        a, b, c = (store.allocate() for _ in range(3))
        pool.write(a, "aaaa")
        pool.write(b, "bbbb")
        pool.read(a)  # a most recent
        pool.write(c, "cccc")  # evicts b (least recent)
        counters.reset()
        pool.read(a)
        assert counters.page_reads == 0

    def test_invalidate(self):
        store, counters = self._store()
        pool = BufferPool(store, capacity_bytes=4096)
        page = store.allocate()
        store.write(page, "disk")
        pool.write(page, "cached")
        pool.invalidate(page)
        assert pool.read(page) == "disk"  # dirty version dropped


class TestPager:
    def test_facade(self):
        counters = CostCounters()
        pager = Pager(page_size=256, counters=counters, cache_bytes=0)
        page = pager.allocate()
        pager.write(page, [1, 2])
        assert pager.read(page) == [1, 2]
        assert pager.disk_bytes() == 256

    def test_set_cache_bytes_flushes(self):
        pager = Pager(page_size=256, cache_bytes=4096)
        page = pager.allocate()
        pager.write(page, "buffered")
        pager.set_cache_bytes(0)
        assert pager.store.read(page) == "buffered"

    def test_free_invalidates(self):
        pager = Pager(page_size=256, cache_bytes=4096)
        page = pager.allocate()
        pager.write(page, "x")
        pager.free(page)
        with pytest.raises(KeyError):
            pager.read(page)

    def test_read_many_weights_never_flushed_page_by_pooled_size(self):
        """Grouped hits on a buffered, never-flushed multi-page node must be
        weighted by the pooled node's serialised size.  (Reproduces the
        defect: the store still holds b"" for such a page, so the old
        weighting collapsed every repeat to 1 page.)"""
        import pickle

        counters = CostCounters()
        pager = Pager(page_size=64, counters=counters, cache_bytes=64 * 1024)
        page = pager.allocate()
        node = {"payload": list(range(200))}  # pickles to several 64B pages
        span = pager.store.pages_spanned(
            len(pickle.dumps(node, protocol=pickle.HIGHEST_PROTOCOL))
        )
        assert span > 1
        pager.write(page, node)  # dirty in the pool, never flushed
        assert pager.store.page_bytes(page) == 0  # the stale source of truth
        counters.reset()
        nodes = pager.read_many([page, page, page])
        assert nodes == {page: node}
        assert counters.grouped_hits == 2 * span  # not 2 * 1
        assert counters.page_reads == 0  # served by the pool throughout
        assert counters.buffer_hits == span

    def test_read_many_weights_rewritten_page_by_current_size(self):
        """A page rewritten (dirty) with bigger content must weight grouped
        hits by the pool's current node, not the store's stale blob."""
        counters = CostCounters()
        pager = Pager(page_size=64, counters=counters, cache_bytes=64 * 1024)
        page = pager.allocate()
        pager.write(page, "tiny")
        pager.flush()  # the store now holds the small (soon stale) blob
        big = {"payload": list(range(200))}
        pager.write(page, big)  # dirty rewrite: pool and store now disagree
        span = pager.store.pages_spanned(pager.pool.resident_bytes(page))
        assert span > 1
        assert pager.store.pages_spanned(pager.store.page_bytes(page)) == 1
        counters.reset()
        pager.read_many([page, page])
        assert counters.grouped_hits == span

    def test_read_many_falls_back_to_store_bytes_without_pool(self):
        """With the pool disabled the store is authoritative -- the old
        weighting path still holds for cold multi-page reads."""
        counters = CostCounters()
        pager = Pager(page_size=64, counters=counters, cache_bytes=0)
        page = pager.allocate()
        node = list(range(200))
        pager.write(page, node)  # write-through: the store blob is current
        span = pager.store.pages_spanned(pager.store.page_bytes(page))
        assert span > 1
        counters.reset()
        pager.read_many([page, page])
        assert counters.grouped_hits == span
        assert counters.page_reads == span  # one real multi-page read


class TestRandomAccessFile:
    def test_append_read(self):
        raf = RandomAccessFile(Pager(page_size=256))
        ptrs = [raf.append(("obj", i)) for i in range(20)]
        for i, ptr in enumerate(ptrs):
            assert raf.read(ptr) == ("obj", i)
        assert len(raf) == 20

    def test_records_grouped_into_pages(self):
        pager = Pager(page_size=256)
        raf = RandomAccessFile(pager)
        ptrs = [raf.append(i) for i in range(50)]
        pages = {p.page_id for p in ptrs}
        assert 1 < len(pages) < 50  # grouped, but more than one page

    def test_sequential_reads_share_page_accesses(self):
        counters = CostCounters()
        pager = Pager(page_size=512, counters=counters, cache_bytes=4096)
        raf = RandomAccessFile(pager)
        ptrs = [raf.append(i) for i in range(30)]
        pager.set_cache_bytes(4096)  # warm cache cleared, fresh start
        counters.reset()
        for ptr in ptrs:
            raf.read(ptr)
        pages = {p.page_id for p in ptrs}
        assert counters.page_reads == len(pages)

    def test_update_and_tombstone(self):
        raf = RandomAccessFile(Pager(page_size=256))
        ptr = raf.append("old")
        raf.update(ptr, "new")
        assert raf.read(ptr) == "new"
        raf.mark_deleted(ptr)
        assert raf.read(ptr) is None

    def test_bad_pointer(self):
        raf = RandomAccessFile(Pager(page_size=256))
        ptr = raf.append("x")
        from repro.storage import RecordPointer

        with pytest.raises(KeyError):
            raf.read(RecordPointer(ptr.page_id, 99))

    def test_fill_factor_validation(self):
        with pytest.raises(ValueError):
            RandomAccessFile(Pager(), fill_factor=0.0)

    def test_oversized_record_gets_own_page(self):
        pager = Pager(page_size=128)
        raf = RandomAccessFile(pager)
        small = raf.append("s")
        big = raf.append("B" * 1000)
        assert big.page_id != small.page_id
        assert raf.read(big) == "B" * 1000
