"""External-category batch engine: batch == sequential == brute force.

The external indexes (Omni family, M-index/M-index*, SPB-tree, PM-tree,
DEPT) answer whole query batches through one shared traversal with 2-D MBB
bounds and page-grouped RAF fetches (``repro.external.batch``).  These
tests pin the contract across three metric families -- Euclidean
(continuous, unique distances), Hamming (discrete, tie-heavy -- the hard
case for canonical kNN tie-breaking), and QuadraticForm (the
expensive-distance representative):

* batch answers are bit-for-bit the sequential and brute-force answers for
  MRQ and MkNNQ;
* batch MRQ performs exactly the sequential loop's counted distance
  computations (the q x l pivot matrix plus the identical survivor sets);
* the RAF-backed indexes read each touched page at most once per batch:
  batch MRQ page accesses undercut the sequential loop's, with the saved
  I/O visible as ``grouped_hits``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    MetricSpace,
    brute_force_knn_many,
    brute_force_range_many,
    select_pivots,
)
from repro.core.dataset import Dataset
from repro.core.distances import (
    HammingDistance,
    L2,
    QuadraticFormDistance,
)
from repro.external import (
    DEPT,
    MIndex,
    MIndexStar,
    OmniBPlusTree,
    OmniRTree,
    OmniSequentialFile,
    PMTree,
    SPBTree,
)

N = 240
N_PIVOTS = 4
K = 7
BATCH = 12

EXTERNAL = (
    "Omni-seq",
    "OmniB+",
    "OmniR-tree",
    "M-index",
    "M-index*",
    "SPB-tree",
    "PM-tree",
    "DEPT",
)
# indexes that keep objects in a RandomAccessFile (PM-tree stores objects
# inside its nodes, so it has no RAF to group -- its batch win is reading
# each *node* once per batch instead)
RAF_BACKED = tuple(name for name in EXTERNAL if name != "PM-tree")

_BUILDERS = {
    "Omni-seq": lambda space, pivots: OmniSequentialFile.build(space, pivots),
    "OmniB+": lambda space, pivots: OmniBPlusTree.build(space, pivots),
    "OmniR-tree": lambda space, pivots: OmniRTree.build(space, pivots),
    "M-index": lambda space, pivots: MIndex.build(space, pivots, maxnum=64),
    "M-index*": lambda space, pivots: MIndexStar.build(space, pivots, maxnum=64),
    "SPB-tree": lambda space, pivots: SPBTree.build(space, pivots),
    "PM-tree": lambda space, pivots: PMTree.build(space, pivots, page_size=4096),
    "DEPT": lambda space, pivots: DEPT.build(
        space, n_pivots_per_object=len(pivots), seed=3
    ),
}


def _quadratic_form(dim: int, seed: int) -> QuadraticFormDistance:
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(dim, dim))
    return QuadraticFormDistance(basis @ basis.T + dim * np.eye(dim))


def _make_dataset(metric_name: str) -> Dataset:
    rng = np.random.default_rng(29)
    if metric_name == "euclidean":
        return Dataset(rng.normal(size=(N, 4)) * 50.0, L2, name="euclidean")
    if metric_name == "hamming":
        # tiny alphabet: distances collide constantly, so kNN boundaries
        # are decided by the canonical (distance, id) tie-breaking
        return Dataset(
            rng.integers(0, 3, size=(N, 8)), HammingDistance(), name="hamming"
        )
    if metric_name == "quadratic":
        return Dataset(
            rng.normal(size=(N, 6)) * 10.0, _quadratic_form(6, 31), name="quadratic"
        )
    raise ValueError(metric_name)


RADIUS = {"euclidean": 60.0, "hamming": 5.0, "quadratic": 60.0}
METRICS = ("euclidean", "hamming", "quadratic")


@pytest.fixture(scope="module")
def metric_datasets():
    return {name: _make_dataset(name) for name in METRICS}


@pytest.fixture(scope="module")
def built_externals(metric_datasets):
    cache: dict = {}

    def get(metric_name: str, index_name: str):
        key = (metric_name, index_name)
        if key not in cache:
            dataset = metric_datasets[metric_name]
            space = MetricSpace(dataset, CostCounters())
            pivots = select_pivots(
                MetricSpace(dataset), N_PIVOTS, strategy="hfi", seed=3
            )
            cache[key] = _BUILDERS[index_name](space, pivots)
        return cache[key]

    return get


def _queries(dataset) -> list:
    return [dataset[i] for i in range(BATCH)]


@pytest.mark.parametrize("index_name", EXTERNAL)
@pytest.mark.parametrize("metric_name", METRICS)
def test_batch_range_matches_sequential_and_brute_force(
    metric_datasets, built_externals, metric_name, index_name
):
    dataset = metric_datasets[metric_name]
    index = built_externals(metric_name, index_name)
    queries = _queries(dataset)
    radius = RADIUS[metric_name]
    counters = index.space.counters

    before = counters.snapshot()
    sequential = [index.range_query(q, radius) for q in queries]
    seq_cost = counters.snapshot() - before

    before = counters.snapshot()
    batch = index.range_query_many(queries, radius)
    batch_cost = counters.snapshot() - before

    assert batch == sequential
    assert batch == brute_force_range_many(MetricSpace(dataset), queries, radius)
    # batch MRQ must pay exactly the sequential loop's distance computations
    assert batch_cost.distance_computations == seq_cost.distance_computations


@pytest.mark.parametrize("index_name", EXTERNAL)
@pytest.mark.parametrize("metric_name", METRICS)
def test_batch_knn_matches_sequential_and_brute_force(
    metric_datasets, built_externals, metric_name, index_name
):
    dataset = metric_datasets[metric_name]
    index = built_externals(metric_name, index_name)
    queries = _queries(dataset)

    sequential = [index.knn_query(q, K) for q in queries]
    batch = index.knn_query_many(queries, K)

    assert batch == sequential
    assert batch == brute_force_knn_many(MetricSpace(dataset), queries, K)


@pytest.mark.parametrize("index_name", RAF_BACKED)
def test_batch_range_groups_page_reads(metric_datasets, built_externals, index_name):
    """Each touched page is read at most once per batch (counter-asserted)."""
    dataset = metric_datasets["euclidean"]
    index = built_externals("euclidean", index_name)
    queries = _queries(dataset)
    radius = RADIUS["euclidean"]
    counters = index.space.counters

    def measure(run):
        index.pager.set_cache_bytes(16 * 1024)  # identical cold pool per pass
        before = counters.snapshot()
        answers = run()
        return answers, counters.snapshot() - before

    sequential, seq_cost = measure(
        lambda: [index.range_query(q, radius) for q in queries]
    )
    batch, batch_cost = measure(lambda: index.range_query_many(queries, radius))
    index.pager.set_cache_bytes(0)
    assert batch == sequential
    assert batch_cost.page_accesses < seq_cost.page_accesses, (
        index_name,
        batch_cost,
        seq_cost,
    )
    # the saved I/O must show up as grouped hits, not vanish
    assert batch_cost.grouped_hits > 0, (index_name, batch_cost)


def test_empty_batch_and_empty_results(metric_datasets, built_externals):
    dataset = metric_datasets["euclidean"]
    for index_name in EXTERNAL:
        index = built_externals("euclidean", index_name)
        assert index.range_query_many([], 10.0) == []
        assert index.knn_query_many([], K) == []
        far = dataset[0] + 1e7  # far outside the data: empty answers
        assert index.range_query_many([far, far], 1.0) == [[], []]
