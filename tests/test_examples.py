"""Examples must stay runnable: execute the fast ones, import-check the rest."""

from __future__ import annotations

import os
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

# the examples import `repro` from a source checkout; the pytest process gets
# src/ via pyproject's pythonpath, but subprocesses need the env var
_SRC = str(EXAMPLES_DIR.parent / "src")
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = _SRC + os.pathsep + _ENV.get("PYTHONPATH", "")


def test_all_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "serve_quickstart.py",
        "http_quickstart.py",
        "spell_checker.py",
        "geo_search.py",
        "multimedia_retrieval.py",
        "knn_classifier.py",
        "index_selection.py",
        "cluster_quickstart.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    source = path.read_text()
    compile(source, str(path), "exec")


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "defoliates" in result.stdout
    assert "defoliated" in result.stdout


def test_knn_classifier_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "knn_classifier.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "hold-out accuracy" in result.stdout


def test_serve_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "serve_quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "restored with 0 distance computations" in result.stdout
    assert "hit rate" in result.stdout
    assert "vectorised batches" in result.stdout


def test_cluster_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "cluster_quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "cluster up: router at http://127.0.0.1:" in result.stdout
    assert "scatter-gather exact" in result.stdout
    assert "cluster drained cleanly" in result.stdout


def test_http_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "http_quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "serving at http://127.0.0.1:" in result.stdout
    assert "over loopback HTTP" in result.stdout
    assert "shut down cleanly" in result.stdout
