"""Observability: metrics primitives, trace spans, and cost attribution.

Covers the telemetry tentpole's core contracts:

* histograms have fixed log-spaced boundaries, merge by vector addition,
  and derive p50/p90/p99 from bucket counts;
* the registry renders valid Prometheus text exposition and is strict
  about re-declaration mismatches;
* tracing is a no-op without an active root span and builds proper span
  trees with one;
* batch cost attribution is **sum-exact**: the attributed shares of a
  coalesced batch reconstruct the measured ``CostCounters`` delta field
  by field (``CostSnapshot.split``), and a batch executed alone is
  attributed exactly;
* ``CostCounters``/``CostSnapshot`` serialisation surfaces are
  field-complete by reflection, so adding a counter field can never
  silently drop it from merge/reset/snapshot/as_dict.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields

import pytest

from conftest import RADIUS
from repro import CostCounters, QueryService
from repro.core.counters import CostSnapshot
from repro.obs import tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from repro.obs.tracing import Span


# -- metrics primitives -------------------------------------------------------


def test_exponential_buckets_geometry_and_validation():
    assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
    with pytest.raises(ValueError):
        exponential_buckets(0.0, 2.0, 4)
    with pytest.raises(ValueError):
        exponential_buckets(1.0, 1.0, 4)
    with pytest.raises(ValueError):
        exponential_buckets(1.0, 2.0, 0)


def test_counter_increments_and_rejects_negative():
    c = Counter("requests_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_fan_out_to_children():
    c = Counter("outcomes_total", labelnames=("outcome",))
    c.labels("hit").inc(3)
    c.labels("miss").inc()
    assert c.labels("hit") is c.labels("hit")
    assert c.labels("hit").value == 3
    assert c.labels(outcome="miss").value == 1
    with pytest.raises(ValueError):
        c.labels("hit", "extra")
    with pytest.raises(ValueError):
        c.labels(wrong="hit")


def test_gauge_set_inc_dec_and_callback():
    g = Gauge("inflight")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2
    g.set_function(lambda: 42.0)
    assert g.value == 42.0


def test_histogram_counts_sum_mean_and_overflow():
    h = Histogram("lat_ms", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 3.0, 100.0):
        h.observe(v)
    counts, total, summed = h.snapshot()
    assert counts == [1, 0, 1, 1]  # last slot is the overflow bucket
    assert total == 3
    assert summed == pytest.approx(103.5)
    assert h.mean == pytest.approx(103.5 / 3)


def test_histogram_percentile_is_bucket_upper_bound():
    h = Histogram("lat_ms", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 3.0, 100.0):
        h.observe(v)
    assert h.percentile(0.0) == 1.0  # rank clamps to the first observation
    assert h.percentile(0.5) == 4.0
    # overflow observations report the last finite bound, not infinity
    assert h.percentile(1.0) == 4.0
    assert Histogram("empty", buckets=(1.0,)).percentile(0.9) == 0.0
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_merge_is_vector_addition():
    a = Histogram("lat_ms", buckets=(1.0, 2.0, 4.0))
    b = Histogram("lat_ms", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 3.0):
        a.observe(v)
    for v in (1.5, 9.0, 0.2):
        b.observe(v)
    a.merge(b)
    counts, total, summed = a.snapshot()
    assert total == 5
    assert counts == [2, 1, 1, 1]
    assert summed == pytest.approx(0.5 + 3.0 + 1.5 + 9.0 + 0.2)
    with pytest.raises(ValueError):
        a.merge(Histogram("lat_ms", buckets=(1.0, 8.0)))


def test_histogram_rejects_non_ascending_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(2.0, 1.0))


def test_registry_get_or_create_and_mismatch_errors():
    reg = MetricsRegistry()
    c = reg.counter("x_total", "help")
    assert reg.counter("x_total") is c
    assert reg.get("x_total") is c
    assert reg.get("missing") is None
    with pytest.raises(ValueError):
        reg.gauge("x_total")
    with pytest.raises(ValueError):
        reg.counter("x_total", labelnames=("k",))
    h = reg.histogram("h_ms", buckets=(1.0, 2.0))
    assert reg.histogram("h_ms", buckets=(1.0, 2.0)) is h
    with pytest.raises(ValueError):
        reg.histogram("h_ms", buckets=(1.0, 4.0))


def test_registry_renders_prometheus_text_exposition():
    reg = MetricsRegistry()
    reg.counter("x_total", "requests so far", labelnames=("k",)).labels("a").inc(2)
    reg.gauge("inflight", "current").set(7)
    h = reg.histogram("lat_ms", "latency", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 3.0, 100.0):
        h.observe(v)
    text = reg.render()
    assert "# HELP x_total requests so far" in text
    assert "# TYPE x_total counter" in text
    assert 'x_total{k="a"} 2' in text
    assert "# TYPE inflight gauge" in text
    assert "inflight 7" in text
    assert "# TYPE lat_ms histogram" in text
    # bucket counts are cumulative and +Inf equals the total count
    assert 'lat_ms_bucket{le="1"} 1' in text
    assert 'lat_ms_bucket{le="2"} 1' in text
    assert 'lat_ms_bucket{le="4"} 2' in text
    assert 'lat_ms_bucket{le="+Inf"} 3' in text
    assert "lat_ms_count 3" in text
    assert "lat_ms_sum 103.5" in text
    assert text.endswith("\n")


def test_registry_summary_digests_histograms():
    reg = MetricsRegistry()
    reg.counter("x_total").inc(5)
    h = reg.histogram("lat_ms", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 3.0, 100.0):
        h.observe(v)
    summary = reg.summary()
    assert summary["x_total"] == 5
    digest = summary["lat_ms"]
    assert digest["count"] == 3
    assert digest["p50"] == 4.0
    assert digest["p99"] == 4.0
    assert digest["mean"] == pytest.approx(103.5 / 3, abs=1e-3)


def test_metrics_are_thread_safe_under_contention():
    reg = MetricsRegistry()
    c = reg.counter("n_total")
    h = reg.histogram("v_ms", buckets=(1.0, 2.0, 4.0))

    def hammer():
        for i in range(500):
            c.inc()
            h.observe(float(i % 8))

    with ThreadPoolExecutor(max_workers=8) as pool:
        for _ in pool.map(lambda _: hammer(), range(8)):
            pass
    assert c.value == 8 * 500
    counts, total, _ = h.snapshot()
    assert total == 8 * 500
    assert sum(counts) == total


# -- tracing ------------------------------------------------------------------


def test_untraced_paths_are_noops():
    assert tracing.current_span() is None
    assert not tracing.active()
    with tracing.span("anything") as s:
        assert s is None
    tracing.add_event("page_reads", 3)  # must not raise
    counters = CostCounters()
    with tracing.batch_execution("range", counters, 2, 2) as b:
        assert b is None
        counters.add_distances(5)
    assert tracing.current_span() is None


def test_span_tree_and_events():
    with tracing.start_trace("request", method="POST") as root:
        assert tracing.current_span() is root
        assert tracing.active()
        with tracing.span("cache_lookup", kind="range") as child:
            tracing.add_event("page_reads", 2)
            tracing.add_event("page_reads")
    assert tracing.current_span() is None
    assert root.wall_ms is not None
    assert [c.name for c in root.children] == ["cache_lookup"]
    assert child.cost == {"page_reads": 3}
    d = root.to_dict()
    assert d["name"] == "request"
    assert d["meta"] == {"method": "POST"}
    assert d["spans"][0]["meta"] == {"kind": "range"}
    assert d["spans"][0]["cost"] == {"page_reads": 3}


def test_batch_execution_exact_attribution():
    counters = CostCounters()
    with tracing.start_trace("request") as root:
        with tracing.batch_execution("range", counters, 3, 2):
            counters.add_distances(7)
            counters.add_page_read(2)
            tracing.add_event("buffer_hits", 4)
    (batch,) = root.children
    assert batch.name == "batch_execute"
    assert batch.meta["coalesced"] is False
    assert batch.meta["batch_size"] == 3
    assert batch.meta["distinct"] == 2
    assert batch.cost["distance_computations"] == 7
    assert batch.cost["page_reads"] == 2
    assert batch.cost["buffer_hits"] == 4  # storage event recorded in-span


def test_batch_execution_coalesced_attribution_is_sum_exact():
    counters = CostCounters()
    participants = [Span("dispatcher_wait"), None, Span("dispatcher_wait")]
    with tracing.attribution_scope(participants):
        with tracing.batch_execution("range", counters, 3, 3):
            counters.add_distances(7)
            counters.add_page_read(5)
    pieces = [p.children[0] for p in participants if p is not None]
    assert all(p.name == "batch_execute" for p in pieces)
    assert all(p.meta["coalesced"] is True for p in pieces)
    # both traced requests rode the same batch
    assert pieces[0].meta["batch"] == pieces[1].meta["batch"]
    # shares follow CostSnapshot.split over ALL 3 participants (the
    # untraced one's share exists, it just has no span to land on):
    # 7 -> 3,2,2 and 5 -> 2,2,1
    assert [p.cost["distance_computations"] for p in pieces] == [3, 2]
    assert [p.cost["page_reads"] for p in pieces] == [2, 1]


def test_attribution_scope_resets_after_exit():
    counters = CostCounters()
    with tracing.attribution_scope([Span("w")]):
        pass
    # after the scope, an untraced batch execution is a no-op again
    with tracing.batch_execution("range", counters, 1, 1) as b:
        assert b is None


# -- CostSnapshot.split / reflection completeness -----------------------------


def test_cost_snapshot_split_is_sum_exact():
    snap = CostSnapshot(
        distance_computations=7,
        page_reads=5,
        page_writes=1,
        elapsed_seconds=0.3,
        cache_hits=2,
        cache_misses=3,
        cache_evictions=0,
        buffer_hits=10,
        grouped_hits=4,
    )
    shares = snap.split(3)
    assert len(shares) == 3
    for f in fields(CostSnapshot):
        total = sum(getattr(s, f.name) for s in shares)
        expected = getattr(snap, f.name)
        assert total == pytest.approx(expected), f.name
    # integer remainders go to the first shares: 7 over 3 -> 3, 2, 2
    assert [s.distance_computations for s in shares] == [3, 2, 2]
    assert snap.split(1)[0] == snap
    with pytest.raises(ValueError):
        snap.split(0)


def test_counters_surfaces_are_field_complete_by_reflection():
    counters = CostCounters()
    names = counters.count_fields()
    assert names  # non-empty, derived from dataclasses.fields
    for i, name in enumerate(names):
        setattr(counters, name, i + 1)

    # snapshot carries every count field
    snap = counters.snapshot()
    for i, name in enumerate(names):
        assert getattr(snap, name) == i + 1, name

    # as_dict covers every count field (counters) and every snapshot
    # field plus the derived page_accesses (snapshot)
    assert set(counters.as_dict()) == set(names)
    snap_fields = {f.name for f in fields(CostSnapshot)}
    assert set(snap.as_dict()) == snap_fields | {"page_accesses"}
    # every counter field must exist on the snapshot dataclass too
    assert set(names) <= snap_fields

    # merge folds every count field
    other = CostCounters()
    other.merge(counters)
    for i, name in enumerate(names):
        assert getattr(other, name) == i + 1, name

    # snapshot subtraction is field-complete
    delta = counters.snapshot() - CostCounters().snapshot()
    for i, name in enumerate(names):
        assert getattr(delta, name) == i + 1, name

    # reset zeroes every count field
    counters.reset()
    assert all(v == 0 for v in counters.as_dict().values())


# -- service integration ------------------------------------------------------


def test_service_batch_attribution_matches_counters_exactly(
    datasets, built_indexes
):
    """An un-coalesced batch's span carries the full measured delta."""
    index = built_indexes("Words", "LAESA")
    registry = MetricsRegistry()
    with QueryService(
        index, metrics=registry, use_dispatcher=False, cache_size=0
    ) as service:
        queries = [datasets["Words"][i] for i in range(4)]
        before = service.counters.snapshot()
        with tracing.start_trace("request") as root:
            service.range_query_many(queries, RADIUS["Words"])
        delta = service.counters.snapshot() - before
    (batch,) = [c for c in root.children if c.name == "batch_execute"]
    assert delta.distance_computations > 0
    assert batch.cost["distance_computations"] == delta.distance_computations
    assert batch.meta["coalesced"] is False
    # the batch-execute latency histogram observed the call
    assert registry.get("repro_service_batch_execute_ms").labels("range").count == 1


def _attributed_compdists(span) -> int:
    total = 0
    if span.name == "batch_execute":
        total += span.cost.get("distance_computations", 0)
        return total  # children of a batch span are storage sub-spans
    for child in span.children:
        total += _attributed_compdists(child)
    return total


def test_dispatcher_coalesced_attribution_sums_to_counters_delta(
    datasets, built_indexes
):
    """Concurrent traced requests: attributed shares reconstruct the
    dispatcher batches' counter deltas exactly, however the requests
    happened to coalesce."""
    index = built_indexes("Words", "LAESA")
    registry = MetricsRegistry()
    queries = [datasets["Words"][i] for i in range(8)]
    with QueryService(
        index,
        metrics=registry,
        cache_size=0,  # every request must reach the dispatcher
        max_batch_size=8,
        max_wait_ms=25.0,
    ) as service:
        barrier = threading.Barrier(len(queries))

        def one(q):
            barrier.wait()
            with tracing.start_trace("request") as root:
                service.range_query(q, RADIUS["Words"])
            return root

        before = service.counters.snapshot()
        with ThreadPoolExecutor(max_workers=len(queries)) as pool:
            roots = list(pool.map(one, queries))
        delta = service.counters.snapshot() - before

    assert delta.distance_computations > 0
    attributed = sum(_attributed_compdists(root) for root in roots)
    assert attributed == delta.distance_computations
    # every request has exactly one batch_execute span under its
    # dispatcher_wait span, annotated with its queue wait
    for root in roots:
        (wait,) = [c for c in root.children if c.name == "dispatcher_wait"]
        assert "queue_wait_ms" in wait.meta
        (batch,) = [c for c in wait.children if c.name == "batch_execute"]
        if batch.meta["coalesced"]:
            assert "batch" in batch.meta
    # queue-wait and batch-size histograms saw the traffic
    assert registry.get("repro_dispatcher_queue_wait_ms").count == len(queries)
    assert registry.get("repro_dispatcher_batch_size").count >= 1


def test_service_cache_metrics_record_outcomes(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    registry = MetricsRegistry()
    with QueryService(index, metrics=registry, use_dispatcher=False) as service:
        q = datasets["Words"][0]
        service.range_query(q, RADIUS["Words"])
        service.range_query(q, RADIUS["Words"])
        stats = service.stats()
    outcomes = registry.get("repro_cache_requests_total")
    assert outcomes.labels("miss").value >= 1
    assert outcomes.labels("hit").value >= 1
    telemetry = stats["telemetry"]
    assert telemetry["repro_cache_requests_total"]["hit"] >= 1
    assert "repro_service_batch_execute_ms" in telemetry
