"""Benchmark harness: workloads, calibration, runner, reporting."""

from __future__ import annotations

import pytest

from repro import MetricSpace, brute_force_range
from repro.bench import (
    calibrate_radius,
    format_markdown,
    format_ranking,
    format_table,
    human_bytes,
    make_workload,
    measure_build,
    run_knn_queries,
    run_range_queries,
    run_updates,
    sample_queries,
    shared_pivots,
)


@pytest.fixture(scope="module")
def words_workload():
    return make_workload("Words", n=500, n_queries=4, selectivities=(0.16,))


@pytest.fixture(scope="module")
def words_pivots(words_workload):
    return shared_pivots(words_workload, 4, seed=1)


class TestWorkloads:
    def test_make_workload_unknown(self):
        with pytest.raises(ValueError):
            make_workload("Nope")

    def test_queries_sampled_from_dataset(self, words_workload):
        members = set(words_workload.dataset.objects)
        assert all(q in members for q in words_workload.queries)

    def test_radius_calibration_hits_selectivity(self, words_workload):
        dataset = words_workload.dataset
        radius = words_workload.radius_for(0.16)
        space = MetricSpace(dataset)
        fractions = [
            len(brute_force_range(space, q, radius)) / len(dataset)
            for q in words_workload.queries
        ]
        mean = sum(fractions) / len(fractions)
        assert 0.02 < mean < 0.6  # rough but sane around 16%

    def test_calibrate_radius_validation(self, words_workload):
        with pytest.raises(ValueError):
            calibrate_radius(words_workload.dataset, 0.0)

    def test_sample_queries_deterministic(self, words_workload):
        a = sample_queries(words_workload.dataset, 5, seed=3)
        b = sample_queries(words_workload.dataset, 5, seed=3)
        assert a == b


class TestRunner:
    def test_measure_build_counts(self, words_workload, words_pivots):
        result = measure_build("LAESA", words_workload, words_pivots)
        # LAESA's build is exactly the pivot mapping: |P| * n computations
        assert result.compdists == 4 * 500
        assert result.memory_bytes > 0
        assert result.seconds >= 0

    def test_query_runs_average(self, words_workload, words_pivots):
        result = measure_build("SPB-tree", words_workload, words_pivots)
        radius = words_workload.radius_for(0.16)
        range_cost = run_range_queries(result.index, words_workload.queries, radius)
        assert range_cost.compdists > 0
        assert range_cost.page_accesses > 0
        knn_cost = run_knn_queries(result.index, words_workload.queries, 5)
        assert knn_cost.compdists > 0

    def test_knn_cache_reduces_pa(self, words_workload, words_pivots):
        result = measure_build("SPB-tree", words_workload, words_pivots)
        cached = run_knn_queries(result.index, words_workload.queries, 5)
        uncached = run_knn_queries(
            result.index, words_workload.queries, 5, cache_bytes=0
        )
        assert cached.page_accesses <= uncached.page_accesses

    def test_run_updates(self, words_workload, words_pivots):
        result = measure_build("MVPT", words_workload, words_pivots)
        cost = run_updates(result.index, [3, 8, 21])
        assert cost.compdists > 0
        # the index still answers correctly afterwards
        q = words_workload.queries[0]
        space = MetricSpace(words_workload.dataset)
        assert result.index.range_query(q, 4.0) == brute_force_range(space, q, 4.0)


class TestReporting:
    ROWS = [
        {"Index": "A", "compdists": 120.0, "PA": 3.5},
        {"Index": "B", "compdists": 80.0, "PA": 12.0},
    ]

    def test_format_table(self):
        text = format_table(self.ROWS, title="T", first_column="Index")
        assert "T" in text and "compdists" in text
        lines = text.splitlines()
        assert lines[1].startswith("Index")

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_markdown(self):
        md = format_markdown(self.ROWS, first_column="Index")
        assert md.startswith("| Index |")
        assert md.splitlines()[1] == "|---|---|---|"

    def test_format_ranking(self):
        line = format_ranking({"A": 10.0, "B": 2.0}, "PA")
        assert line.startswith("PA: 1. B")

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KB"
        assert human_bytes(3 * 1024 * 1024) == "3.0 MB"
