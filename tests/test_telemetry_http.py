"""HTTP-layer telemetry: /metrics, /stats percentiles, /healthz, slow-query log.

The serving-stack half of the observability tentpole:

* ``GET /metrics`` serves the shared registry's Prometheus text
  exposition, and ``/stats`` folds the same histograms into percentile
  digests under ``telemetry``;
* ``/healthz`` reports uptime, the serving snapshot path, and the reload
  generation (bumped by every hot swap);
* with a slow-query threshold each query request logs one JSON line
  whose span tree carries this request's attributed share of the batch
  costs -- summing exactly to the service counters' delta across a
  burst, however the dispatcher coalesced it;
* everything stays consistent under concurrent hammering: log lines
  never interleave, counters only go up;
* ``repro stats URL [--metrics]`` fetches either payload from the CLI.
"""

from __future__ import annotations

import io
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import pytest

from conftest import RADIUS
from repro import CostCounters, MetricSpace, QueryService, save_index, select_pivots
from repro.cli import main
from repro.obs import MetricsRegistry
from repro.service.http import HttpQueryServer, ServiceClient, ServiceClientError
from repro.tables import LAESA

K = 5


def _laesa_over(dataset):
    space = MetricSpace(dataset, CostCounters())
    return LAESA.build(space, select_pivots(MetricSpace(dataset), 3, strategy="hfi"))


@pytest.fixture
def telemetry_stack(datasets, built_indexes):
    """Factory for a served Words LAESA with full telemetry enabled.

    One shared :class:`MetricsRegistry` spans the service (cache,
    dispatcher, batch instruments) and the HTTP server (request
    instruments), exactly as ``repro serve --http --metrics`` wires it.
    """
    created = []

    def make(slow_query_ms=0.0, cache_size=1024, **service_kw):
        index = built_indexes("Words", "LAESA")
        registry = MetricsRegistry()
        service = QueryService(
            index,
            metrics=registry,
            cache_size=cache_size,
            max_batch_size=16,
            max_wait_ms=25.0,
            **service_kw,
        )
        slow_log, access_log = io.StringIO(), io.StringIO()
        server = HttpQueryServer(
            service,
            metrics=registry,
            slow_query_ms=slow_query_ms,
            slow_query_log=slow_log,
            access_log=access_log,
        ).start()
        client = ServiceClient(port=server.port)
        created.append((client, server, service))
        return SimpleNamespace(
            registry=registry,
            service=service,
            server=server,
            client=client,
            slow_log=slow_log,
            access_log=access_log,
        )

    yield make
    for client, server, service in created:
        client.close()
        server.close()
        service.close()


# -- /metrics + /stats --------------------------------------------------------


def test_metrics_endpoint_serves_prometheus_text(datasets, telemetry_stack):
    stack = telemetry_stack()
    q = datasets["Words"][0]
    stack.client.range_query(q, RADIUS["Words"])
    stack.client.range_query(q, RADIUS["Words"])  # a cache hit
    stack.client.knn_query(q, K)
    text = stack.client.metrics_text()
    assert "# TYPE repro_http_requests_total counter" in text
    assert 'repro_http_requests_total{endpoint="/range",status="200"} 2' in text
    assert "# TYPE repro_http_request_ms histogram" in text
    assert 'repro_http_request_ms_bucket{endpoint="/range",le="+Inf"} 2' in text
    assert "# TYPE repro_service_batch_execute_ms histogram" in text
    assert 'repro_cache_requests_total{outcome="hit"} 1' in text
    assert "# TYPE repro_dispatcher_batch_size histogram" in text
    assert "repro_http_inflight_requests 0" in text
    assert "repro_http_uptime_seconds" in text
    assert 'repro_http_wire_bytes_total{codec="json",direction="out"}' in text


def test_metrics_404_when_registry_absent(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    with QueryService(index, max_wait_ms=1.0) as service:
        with HttpQueryServer(service).start() as server:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceClientError) as err:
                client.metrics_text()
            assert err.value.status == 404
            client.close()


def test_stats_folds_percentile_digests(datasets, telemetry_stack):
    stack = telemetry_stack()
    q = datasets["Words"][1]
    stack.client.range_query(q, RADIUS["Words"])
    stats = stack.client.stats()
    telemetry = stats["telemetry"]
    latency = telemetry["repro_http_request_ms"]["/range"]
    assert latency["count"] == 1
    assert latency["p50"] > 0
    assert set(latency) == {"count", "mean", "p50", "p90", "p99"}
    assert telemetry["repro_cache_requests_total"]["miss"] >= 1


# -- /healthz -----------------------------------------------------------------


def test_healthz_reports_uptime_snapshot_and_generation(datasets, tmp_path):
    small = datasets["Words"].subset(range(100))
    large = datasets["Words"].subset(range(250))
    path_small, path_large = tmp_path / "small.snap", tmp_path / "large.snap"
    save_index(_laesa_over(small), path_small)
    save_index(_laesa_over(large), path_large)

    service = QueryService.from_snapshot(path_small, max_wait_ms=1.0)
    with service, HttpQueryServer(service).start() as server:
        client = ServiceClient(port=server.port)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["snapshot"] == str(path_small)
        assert health["reload_generation"] == 0
        client.reload(path_large)
        health = client.healthz()
        assert health["snapshot"] == str(path_large)
        assert health["reload_generation"] == 1
        assert health["objects"] == 250
        client.close()


def test_healthz_without_snapshot_reports_none(datasets, telemetry_stack):
    health = telemetry_stack().client.healthz()
    assert health["snapshot"] is None
    assert health["reload_generation"] == 0


# -- slow-query log + cost attribution ----------------------------------------


def _slow_lines(stack, expect: int | None = None) -> list[dict]:
    """Parsed slow-query records, optionally waiting for ``expect`` lines.

    The slow-query line is written just *after* a response's bytes go
    out, so a client that already read its answer may be a beat ahead of
    the handler thread's observation envelope.
    """
    def lines():
        return [l for l in stack.slow_log.getvalue().splitlines() if l]

    if expect is not None:
        deadline = time.monotonic() + 5.0
        while len(lines()) < expect and time.monotonic() < deadline:
            time.sleep(0.01)
    return [json.loads(l) for l in lines()]


def _batch_spans(node) -> list[dict]:
    if node["name"] == "batch_execute":
        return [node]
    out = []
    for child in node.get("spans", ()):
        out.extend(_batch_spans(child))
    return out


def test_slow_query_log_carries_span_tree(datasets, telemetry_stack):
    stack = telemetry_stack(slow_query_ms=0.0)  # log every query request
    q = datasets["Words"][2]
    stack.client.range_query(q, RADIUS["Words"])
    (record,) = _slow_lines(stack, expect=1)
    assert record["kind"] == "slow_query"
    assert record["path"] == "/range"
    assert record["status"] == 200
    assert record["threshold_ms"] == 0.0
    assert record["wall_ms"] > 0
    trace = record["trace"]
    assert trace["name"] == "request"
    names = [s["name"] for s in trace["spans"]]
    assert "cache_lookup" in names
    assert "dispatcher_wait" in names
    (batch,) = _batch_spans(trace)
    assert batch["cost"]["distance_computations"] > 0
    assert "page_reads" in batch["cost"]
    # GET /stats must not be traced or logged
    stack.client.stats()
    assert len(_slow_lines(stack)) == 1


def test_attributed_costs_sum_to_counters_delta_over_http(
    datasets, telemetry_stack
):
    """The acceptance contract end to end: across a concurrent burst, the
    slow-query lines' attributed compdists reconstruct the service
    counters' measured delta exactly, however the dispatcher batched."""
    stack = telemetry_stack(slow_query_ms=0.0, cache_size=0)
    queries = [datasets["Words"][i] for i in range(8)]
    barrier = threading.Barrier(len(queries))

    def one(q):
        barrier.wait()
        return stack.client.range_query(q, RADIUS["Words"])

    before = stack.service.counters.snapshot()
    with ThreadPoolExecutor(max_workers=len(queries)) as pool:
        list(pool.map(one, queries))
    delta = stack.service.counters.snapshot() - before

    records = _slow_lines(stack, expect=len(queries))
    assert len(records) == len(queries)
    batches = [b for r in records for b in _batch_spans(r["trace"])]
    assert len(batches) == len(queries)
    attributed = sum(b["cost"]["distance_computations"] for b in batches)
    assert delta.distance_computations > 0
    assert attributed == delta.distance_computations
    # coalesced shares carry the shared batch id they rode in
    coalesced = [b for b in batches if b["meta"].get("coalesced")]
    for b in coalesced:
        assert "batch" in b["meta"]


# -- concurrency hammer -------------------------------------------------------


def test_concurrent_scrapes_logs_and_queries_stay_consistent(
    datasets, telemetry_stack
):
    stack = telemetry_stack(slow_query_ms=0.0)
    queries = [datasets["Words"][i] for i in range(6)]
    n_rounds = 5
    errors = []

    def query_worker(q):
        try:
            for _ in range(n_rounds):
                stack.client.range_query(q, RADIUS["Words"])
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    def scrape_worker(_):
        try:
            for _ in range(n_rounds):
                text = stack.client.metrics_text()
                assert "repro_http_requests_total" in text
                stats = stack.client.stats()
                assert "telemetry" in stats
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=len(queries) + 2) as pool:
        for q in queries:
            pool.submit(query_worker, q)
        for i in range(2):
            pool.submit(scrape_worker, i)
    assert not errors

    # metrics/logs are recorded just after each response's bytes go out,
    # so the last responses' observations may still be in flight -- settle
    n_queries = len(queries) * n_rounds
    served = stack.registry.get("repro_http_requests_total")
    deadline = time.monotonic() + 5.0
    while (
        served.labels("/range", "200").value < n_queries
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)

    # every access-log and slow-query line is valid, un-interleaved JSON
    access = [json.loads(l) for l in stack.access_log.getvalue().splitlines() if l]
    slow = _slow_lines(stack)
    assert len(slow) == n_queries
    assert sum(1 for a in access if a["path"] == "/range") == n_queries
    assert all(a["status"] == 200 for a in access)

    # counters are monotonic and consistent with the traffic served
    assert served.labels("/range", "200").value == n_queries
    stack.client.range_query(queries[0], RADIUS["Words"])
    # metrics are recorded just after the response bytes go out, so give
    # the handler thread a beat to finish its observation envelope
    deadline = time.monotonic() + 5.0
    while (
        served.labels("/range", "200").value != n_queries + 1
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    assert served.labels("/range", "200").value == n_queries + 1


# -- repro stats CLI ----------------------------------------------------------


def test_cli_stats_fetches_remote_stats_and_metrics(
    datasets, telemetry_stack, capsys
):
    stack = telemetry_stack()
    stack.client.range_query(datasets["Words"][0], RADIUS["Words"])
    url = f"http://127.0.0.1:{stack.server.port}"

    assert main(["stats", url]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["index"] == stack.service.index_id
    assert "telemetry" in payload

    assert main(["stats", url, "--metrics"]) == 0
    text = capsys.readouterr().out
    assert "# TYPE repro_http_requests_total counter" in text

    assert main(["stats", "NoSuchDatasetOrUrl"]) == 2
    capsys.readouterr()
    # a dead port fails gracefully, not with a traceback
    assert main(["stats", "http://127.0.0.1:9", "--metrics"]) == 1
