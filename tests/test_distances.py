"""Distance functions: exactness, vectorised agreement, metric axioms."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DiscreteMetricAdapter,
    EditDistance,
    HammingDistance,
    L1,
    L2,
    LInf,
    LPDistance,
    QuadraticFormDistance,
)

VECTORS = st.lists(
    st.floats(min_value=-1000, max_value=1000, allow_nan=False), min_size=1, max_size=6
)
WORDS = st.text(alphabet="abcdefg", max_size=12)


class TestLPDistance:
    def test_l2_pythagoras(self):
        assert L2([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_l1_manhattan(self):
        assert L1([1, 2], [4, 6]) == pytest.approx(7.0)

    def test_linf_chebyshev(self):
        assert LInf([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_general_p(self):
        d = LPDistance(3)
        assert d([0], [2]) == pytest.approx(2.0)
        assert d([0, 0], [1, 1]) == pytest.approx(2 ** (1 / 3))

    def test_p_below_one_rejected(self):
        with pytest.raises(ValueError):
            LPDistance(0.5)

    def test_inf_string_accepted(self):
        assert math.isinf(LPDistance("inf").p)

    @pytest.mark.parametrize("dist", [L1, L2, LInf, LPDistance(3)])
    def test_one_to_many_matches_scalar(self, dist):
        rng = np.random.default_rng(0)
        q = rng.uniform(-5, 5, size=4)
        mat = rng.uniform(-5, 5, size=(20, 4))
        batch = dist.one_to_many(q, mat)
        scalar = [dist(q, row) for row in mat]
        assert np.allclose(batch, scalar)

    @pytest.mark.parametrize("dist", [L1, L2, LInf])
    def test_pairwise_matches_scalar(self, dist):
        rng = np.random.default_rng(1)
        xs = rng.uniform(-5, 5, size=(5, 3))
        ys = rng.uniform(-5, 5, size=(7, 3))
        mat = dist.pairwise(xs, ys)
        for i in range(5):
            for j in range(7):
                assert mat[i, j] == pytest.approx(dist(xs[i], ys[j]))

    @given(a=VECTORS, b=VECTORS, c=VECTORS)
    @settings(max_examples=100, deadline=None)
    def test_metric_axioms_l2(self, a, b, c):
        size = min(len(a), len(b), len(c))
        a, b, c = a[:size], b[:size], c[:size]
        dab, dba = L2(a, b), L2(b, a)
        assert dab == pytest.approx(dba)  # symmetry
        assert dab >= 0  # non-negativity
        assert L2(a, a) == pytest.approx(0.0)  # identity
        assert L2(a, c) <= dab + L2(b, c) + 1e-7  # triangle inequality


class TestEditDistance:
    def setup_method(self):
        self.d = EditDistance()

    def test_paper_example(self):
        # MRQ("defoliate", 1) = {"defoliates", "defoliated"} in Section 2.1
        assert self.d("defoliate", "defoliates") == 1
        assert self.d("defoliate", "defoliated") == 1
        assert self.d("defoliate", "defoliation") == 3  # e -> ion
        assert self.d("defoliate", "citrate") == 6

    def test_empty_strings(self):
        assert self.d("", "") == 0
        assert self.d("", "abc") == 3
        assert self.d("abc", "") == 3

    def test_is_discrete(self):
        assert self.d.is_discrete

    @given(a=WORDS, b=WORDS)
    @settings(max_examples=150, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        dab = self.d(a, b)
        assert dab == self.d(b, a)
        assert dab <= max(len(a), len(b))
        assert dab >= abs(len(a) - len(b))
        assert dab.is_integer()

    @given(a=WORDS, b=WORDS, c=WORDS)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert self.d(a, c) <= self.d(a, b) + self.d(b, c)

    def test_one_to_many(self):
        words = ["cat", "cart", "dog", ""]
        out = self.d.one_to_many("cat", words)
        assert out.tolist() == [0.0, 1.0, 3.0, 3.0]


class TestHammingDistance:
    def test_basic(self):
        d = HammingDistance()
        assert d("karolin", "kathrin") == 3
        assert d([1, 0, 1], [0, 0, 1]) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            HammingDistance()("ab", "abc")

    def test_vectorised(self):
        d = HammingDistance()
        mat = np.array([[1, 0], [1, 1], [0, 0]])
        assert d.one_to_many(np.array([1, 0]), mat).tolist() == [0.0, 1.0, 1.0]

    def test_pairwise_matches_scalar(self):
        d = HammingDistance()
        rng = np.random.default_rng(5)
        xs = rng.integers(0, 2, size=(4, 6))
        ys = rng.integers(0, 2, size=(7, 6))
        mat = d.pairwise(xs, ys)
        for i in range(4):
            for j in range(7):
                assert mat[i, j] == d(xs[i], ys[j])

    def test_pairwise_strings_fall_back(self):
        d = HammingDistance()
        xs = ["abc", "abd"]
        ys = ["abc", "xbc", "abd"]
        mat = d.pairwise(xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                assert mat[i, j] == d(x, y)


class TestQuadraticForm:
    def test_identity_matrix_is_l2(self):
        d = QuadraticFormDistance(np.eye(3))
        assert d([0, 0, 0], [1, 2, 2]) == pytest.approx(3.0)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            QuadraticFormDistance(np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            QuadraticFormDistance(np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_one_to_many(self):
        rng = np.random.default_rng(2)
        basis = rng.normal(size=(3, 3))
        matrix = basis @ basis.T + 3 * np.eye(3)
        d = QuadraticFormDistance(matrix)
        q = rng.normal(size=3)
        mat = rng.normal(size=(10, 3))
        assert np.allclose(d.one_to_many(q, mat), [d(q, row) for row in mat])

    def test_pairwise_matches_scalar(self):
        rng = np.random.default_rng(6)
        basis = rng.normal(size=(3, 3))
        matrix = basis @ basis.T + 3 * np.eye(3)
        d = QuadraticFormDistance(matrix)
        xs = rng.normal(size=(5, 3))
        ys = rng.normal(size=(8, 3))
        mat = d.pairwise(xs, ys)
        for i in range(5):
            for j in range(8):
                # bitwise, not approx: the batch query layer requires all
                # entry points of a distance to agree exactly
                assert mat[i, j] == d(xs[i], ys[j])

    def test_entry_points_agree_bitwise(self):
        rng = np.random.default_rng(7)
        basis = rng.normal(size=(4, 4))
        d = QuadraticFormDistance(basis @ basis.T + 2 * np.eye(4))
        q = rng.normal(size=4)
        objects = rng.normal(size=(20, 4))
        batch = d.one_to_many(q, objects)
        assert np.array_equal(batch, [d(q, o) for o in objects])
        # a singleton batch must equal the same row of a large batch
        assert d.one_to_many(q, objects[11:12])[0] == batch[11]

    def test_pairwise_zero_diagonal(self):
        d = QuadraticFormDistance(np.eye(2))
        xs = np.array([[1.0, 2.0], [3.0, 4.0]])
        mat = d.pairwise(xs, xs)
        assert np.array_equal(np.diag(mat), [0.0, 0.0])


class TestDiscreteAdapter:
    def test_ceils(self):
        d = DiscreteMetricAdapter(L2)
        assert d([0, 0], [1, 1]) == 2.0  # ceil(1.414)
        assert d.is_discrete

    def test_preserves_triangle(self):
        d = DiscreteMetricAdapter(L2)
        rng = np.random.default_rng(3)
        for _ in range(50):
            a, b, c = rng.uniform(0, 10, size=(3, 2))
            assert d(a, c) <= d(a, b) + d(b, c)

    def test_batch_matches_scalar(self):
        d = DiscreteMetricAdapter(L2)
        rng = np.random.default_rng(4)
        q = rng.uniform(0, 10, size=3)
        mat = rng.uniform(0, 10, size=(8, 3))
        assert np.array_equal(d.one_to_many(q, mat), [d(q, r) for r in mat])
