"""Detailed behaviour of the pivot-based tables (paper Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AESA,
    CPT,
    CostCounters,
    EPT,
    EPTStar,
    LAESA,
    MetricSpace,
    brute_force_knn,
    brute_force_range,
    make_la,
    make_words,
    select_pivots,
)


@pytest.fixture(scope="module")
def la():
    return make_la(400, seed=61)


@pytest.fixture(scope="module")
def la_pivots(la):
    return select_pivots(MetricSpace(la), 4, strategy="hfi", seed=1)


class TestAESADetail:
    def test_table_is_symmetric_with_zero_diagonal(self, la):
        index = AESA.build(MetricSpace(la, CostCounters()))
        assert np.allclose(index.table, index.table.T)
        assert np.allclose(np.diag(index.table), 0.0)

    def test_build_cost_is_half_matrix(self, la):
        counters = CostCounters()
        AESA.build(MetricSpace(la, counters))
        n = len(la)
        assert counters.distance_computations == n * (n - 1) // 2

    def test_query_compdists_sublinear(self, la):
        index = AESA.build(MetricSpace(la, CostCounters()))
        counters = index.space.counters
        counters.reset()
        index.knn_query(la[7], 5)
        # AESA's claim to fame: near-constant distance computations
        assert counters.distance_computations < len(la) / 4

    def test_storage_quadratic(self, la):
        index = AESA.build(MetricSpace(la, CostCounters()))
        assert index.storage_bytes()["memory"] >= 8 * len(la) ** 2


class TestLAESADetail:
    def test_range_compdists_is_pivots_plus_survivors(self, la, la_pivots):
        """The exact accounting the paper's cost model uses.

        Pinned to ``bounds="triangle"`` so the survivor count is exactly
        Lemma 1's -- under ``auto`` the Ptolemaic stage may (provably)
        prune more, which is asserted separately below.
        """
        index = LAESA.build(
            MetricSpace(la, CostCounters()), la_pivots, bounds="triangle"
        )
        counters = index.space.counters
        q = la[9]
        radius = 500.0
        counters.reset()
        result = index.range_query(q, radius)
        # recompute survivors independently
        from repro.core.pivot_filter import lower_bound_many

        qd = np.asarray([la.distance(q, la[p]) for p in la_pivots])
        survivors = int((lower_bound_many(qd, index.mapping.matrix) <= radius).sum())
        assert counters.distance_computations == len(la_pivots) + survivors
        assert set(result) <= set(range(len(la)))

    def test_auto_bounds_verify_no_more_than_triangle(self, la, la_pivots):
        """Ptolemaic stage 4 can only shrink the verified candidate set."""
        answers = {}
        compdists = {}
        for bounds in ("triangle", "auto"):
            index = LAESA.build(
                MetricSpace(la, CostCounters()), la_pivots, bounds=bounds
            )
            counters = index.space.counters
            counters.reset()
            answers[bounds] = index.range_query(la[9], 500.0)
            compdists[bounds] = counters.distance_computations
        assert answers["auto"] == answers["triangle"]
        assert compdists["auto"] <= compdists["triangle"]

    def test_pivot_rows_are_zero_at_pivot(self, la, la_pivots):
        index = LAESA.build(MetricSpace(la, CostCounters()), la_pivots)
        for j, p in enumerate(la_pivots):
            assert index.mapping.matrix[p, j] == 0.0

    def test_knn_equals_range_at_kth_distance(self, la, la_pivots):
        index = LAESA.build(MetricSpace(la, CostCounters()), la_pivots)
        q = la[3]
        neighbors = index.knn_query(q, 10)
        radius = neighbors[-1].distance
        hits = index.range_query(q, radius)
        assert set(n.object_id for n in neighbors) <= set(hits)

    def test_delete_then_query_excludes(self, la, la_pivots):
        index = LAESA.build(MetricSpace(la, CostCounters()), la_pivots)
        target = index.knn_query(la[3], 1)[0].object_id
        index.delete(target)
        assert target not in index.range_query(la[3], 1000.0)

    def test_delete_missing(self, la, la_pivots):
        index = LAESA.build(MetricSpace(la, CostCounters()), la_pivots)
        with pytest.raises(KeyError):
            index.delete(40_000)


class TestEPTDetail:
    def test_equation1_m_estimate_bounds(self, la):
        space = MetricSpace(la, CostCounters())
        rng = np.random.default_rng(0)
        m = EPT._estimate_group_size(space, l=5, rng=rng)
        assert m in (1, 2, 4, 8, 16, 32)

    def test_insert_uses_extreme_pivot(self, la):
        index = EPT.build(MetricSpace(la, CostCounters()), n_groups=2, group_size=3, seed=1)
        new_id = index.insert(la[0], object_id=0)  # re-register same object
        assert new_id == 0
        row = index._pivot_idx[-1]
        # each group pick lies in its own block
        assert 0 <= row[0] < 3 and 3 <= row[1] < 6

    def test_words_support(self):
        words = make_words(300, seed=62)
        reference = MetricSpace(words)
        index = EPT.build(MetricSpace(words, CostCounters()), n_groups=3, seed=2)
        q = words[5]
        assert index.range_query(q, 4.0) == brute_force_range(reference, q, 4.0)


class TestEPTStarDetail:
    def test_per_object_pivots_differ(self, la):
        index = EPTStar.build(
            MetricSpace(la, CostCounters()), n_pivots_per_object=3, seed=1
        )
        distinct_rows = {tuple(row) for row in index._pivot_idx}
        assert len(distinct_rows) > 1  # objects really get different pivots

    def test_insert_runs_single_object_psa(self, la):
        index = EPTStar.build(
            MetricSpace(la, CostCounters()), n_pivots_per_object=3, seed=1
        )
        counters = index.space.counters
        counters.reset()
        index.delete(5)
        index.insert(la[5], object_id=5)
        # |CP| + |S| + |CP|*|S| distances (the per-object PSA estimate)
        n_cp = len(index.pivot_ids)
        n_s = len(index._sample_ids)
        assert counters.distance_computations == n_cp + n_s + n_cp * n_s

    def test_row_distances_true(self, la):
        index = EPTStar.build(
            MetricSpace(la, CostCounters()), n_pivots_per_object=3, seed=1
        )
        for o in (0, 57, 211):
            for j in range(3):
                pivot_id = index.pivot_ids[index._pivot_idx[o, j]]
                assert index._pivot_dist[o, j] == pytest.approx(
                    la.distance(la[o], la[pivot_id])
                )


class TestCPTDetail:
    def test_verification_reads_pages(self, la, la_pivots):
        index = CPT.build(
            MetricSpace(la, CostCounters()), la_pivots, page_size=4096
        )
        counters = index.space.counters
        counters.reset()
        index.range_query(la[4], 400.0)
        assert counters.page_reads > 0  # objects come from the M-tree

    def test_mtree_holds_every_object(self, la, la_pivots):
        index = CPT.build(
            MetricSpace(la, CostCounters()), la_pivots, page_size=4096
        )
        ids = sorted(e.object_id for _, e in index.mtree.iter_leaf_entries())
        assert ids == list(range(len(la)))

    def test_knn_matches_brute_force_after_updates(self, la, la_pivots):
        index = CPT.build(
            MetricSpace(la, CostCounters()), la_pivots, page_size=4096
        )
        index.delete(10)
        index.insert(la[10], object_id=10)
        got = [round(n.distance, 6) for n in index.knn_query(la[2], 6)]
        want = [
            round(n.distance, 6) for n in brute_force_knn(MetricSpace(la), la[2], 6)
        ]
        assert got == want

    def test_storage_split(self, la, la_pivots):
        index = CPT.build(
            MetricSpace(la, CostCounters()), la_pivots, page_size=4096
        )
        storage = index.storage_bytes()
        assert storage["memory"] > 0 and storage["disk"] > 0
