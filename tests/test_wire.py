"""Binary wire protocol: framed codec, negotiation, and the HTTP fast path.

Covers the tentpole contracts:

* ``wire.dumps`` / ``wire.loads`` round-trip JSON-like trees with numpy
  arrays bit-for-bit (dtype, shape, and bytes preserved; no pickle);
* malformed frames -- bad magic, unknown version, truncation, forbidden
  dtypes, reserved keys -- raise :class:`~repro.service.wire.WireError`;
* the columnar answer forms (id lists, neighbor lists) round-trip through
  frames and still accept the plain JSON shapes;
* content negotiation: ``binary=True`` clients get answers bit-for-bit
  equal to JSON clients and to direct in-process calls on all four query
  endpoints across LA / Words / Color, while plain JSON clients and
  mixed ``Content-Type``/``Accept`` pairings keep working;
* binary-framed errors still surface as :class:`ServiceClientError`;
* the structured access log emits one JSON line per request with the
  negotiated codec, and stays silent when disabled.
"""

from __future__ import annotations

import http.client
import io
import json
import time

import numpy as np
import pytest

from conftest import RADIUS
from repro import QueryService
from repro.core.queries import Neighbor
from repro.service import wire
from repro.service.http import HttpQueryServer, ServiceClient, ServiceClientError

K = 5


# ---------------------------------------------------------------------------
# frame codec round trips
# ---------------------------------------------------------------------------


def test_frame_roundtrip_plain_json_tree():
    payload = {
        "a": 1,
        "b": 2.5,
        "c": "text",
        "d": None,
        "e": True,
        "f": [1, [2, {"g": "nested"}]],
    }
    assert wire.loads(wire.dumps(payload)) == payload


@pytest.mark.parametrize(
    "dtype",
    ["float64", "float32", "int64", "int32", "uint8", "bool", "complex128"],
)
def test_frame_roundtrip_ndarray_bit_for_bit(dtype):
    rng = np.random.default_rng(3)
    arr = (rng.random((7, 5)) * 100).astype(dtype)
    out = wire.loads(wire.dumps({"arr": arr}))["arr"]
    assert out.dtype == np.dtype(dtype).newbyteorder("<").newbyteorder("=")
    assert out.shape == arr.shape
    assert out.tobytes() == arr.tobytes()


def test_frame_roundtrip_noncontiguous_and_nested_arrays():
    base = np.arange(40, dtype=np.float64).reshape(8, 5)
    view = base[::2, 1:4]  # non-contiguous view must be serialised correctly
    payload = {"top": view, "deep": [{"inner": np.array([1, 2, 3], np.int64)}]}
    out = wire.loads(wire.dumps(payload))
    assert np.array_equal(out["top"], view)
    assert np.array_equal(out["deep"][0]["inner"], [1, 2, 3])


def test_frame_arrays_decode_zero_copy_readonly():
    out = wire.loads(wire.dumps({"a": np.arange(10, dtype=np.int64)}))["a"]
    # decoded arrays are frombuffer views over the frame -- never a copy,
    # therefore never writeable
    assert not out.flags.writeable


def test_frame_scalar_numpy_values_become_python():
    out = wire.loads(wire.dumps({"x": np.float64(1.5), "n": np.int64(7)}))
    assert out == {"x": 1.5, "n": 7}
    assert type(out["x"]) is float and type(out["n"]) is int


# ---------------------------------------------------------------------------
# malformed frames
# ---------------------------------------------------------------------------


def test_frame_rejects_object_dtype_on_encode():
    with pytest.raises(wire.WireError, match="numeric"):
        wire.dumps({"bad": np.array(["a", "b"], dtype=object)})


def test_frame_rejects_reserved_key():
    with pytest.raises(wire.WireError, match=r"\$nd"):
        wire.dumps({"$nd": 0})


def test_frame_rejects_bad_magic():
    blob = bytearray(wire.dumps({"a": 1}))
    blob[:4] = b"NOPE"
    with pytest.raises(wire.WireError, match="magic"):
        wire.loads(bytes(blob))


def test_frame_rejects_unknown_version():
    blob = bytearray(wire.dumps({"a": 1}))
    blob[4] = 99
    with pytest.raises(wire.WireError, match="version"):
        wire.loads(bytes(blob))


def test_frame_rejects_truncation():
    blob = wire.dumps({"a": np.arange(100, dtype=np.float64)})
    for cut in (3, 10, len(blob) - 7):
        with pytest.raises(wire.WireError):
            wire.loads(blob[:cut])


def test_frame_rejects_smuggled_object_dtype():
    # a tampered header naming a non-numeric dtype must not reach numpy
    blob = wire.dumps({"a": np.arange(4, dtype=np.float64)})
    assert b'"<f8"' in blob
    with pytest.raises(wire.WireError):
        wire.loads(blob.replace(b'"<f8"', b'"|O8"', 1))


def test_accepts_binary_header_matching():
    assert wire.accepts_binary(wire.BINARY_CONTENT_TYPE)
    assert wire.accepts_binary(f"{wire.BINARY_CONTENT_TYPE}; q=1.0")
    assert not wire.accepts_binary("application/json")
    assert not wire.accepts_binary(None)
    assert not wire.accepts_binary("")


# ---------------------------------------------------------------------------
# columnar answer forms
# ---------------------------------------------------------------------------


def test_id_list_forms_roundtrip_and_accept_json():
    ids = [3, 1, 4, 15]
    packed = wire.loads(wire.dumps({"ids": wire.pack_id_list(ids)}))["ids"]
    assert wire.unpack_id_list(packed) == ids
    assert all(type(i) is int for i in wire.unpack_id_list(packed))
    assert wire.unpack_id_list(ids) == ids  # plain JSON form

    lists = [[5, 2], [], [9, 8, 7]]
    packed = wire.loads(wire.dumps({"r": wire.pack_id_lists(lists)}))["r"]
    assert wire.unpack_id_lists(packed) == lists
    assert wire.unpack_id_lists(lists) == lists  # plain JSON form


def test_neighbor_forms_roundtrip_and_accept_json():
    answer = [Neighbor(1.5, 3), Neighbor(2.25, 8)]
    packed = wire.loads(wire.dumps({"n": wire.pack_neighbors(answer)}))["n"]
    assert wire.unpack_neighbors(packed) == answer
    assert wire.unpack_neighbors([[1.5, 3], [2.25, 8]]) == answer  # JSON form

    lists = [answer, [], [Neighbor(0.0, 1)]]
    packed = wire.loads(wire.dumps({"r": wire.pack_neighbor_lists(lists)}))["r"]
    assert wire.unpack_neighbor_lists(packed) == lists
    json_form = [[[n.distance, n.object_id] for n in ns] for ns in lists]
    assert wire.unpack_neighbor_lists(json_form) == lists


# ---------------------------------------------------------------------------
# negotiated HTTP fast path
# ---------------------------------------------------------------------------


@pytest.fixture
def served_factory(datasets, built_indexes):
    """Start a LAESA server over any conftest dataset; yields a builder."""
    stack = []

    def start(dataset_name, **server_kwargs):
        index = built_indexes(dataset_name, "LAESA")
        service = QueryService(index, cache_size=0, use_dispatcher=False)
        server = HttpQueryServer(service, **server_kwargs).start()
        stack.append((server, service))
        return index, server

    yield start
    for server, service in reversed(stack):
        server.close()
        service.close()


@pytest.mark.parametrize("dataset_name", ["LA", "Words", "Color"])
def test_binary_equals_json_equals_inproc_all_endpoints(
    served_factory, datasets, dataset_name
):
    """The acceptance matrix: binary == JSON == in-process, all endpoints."""
    index, server = served_factory(dataset_name)
    dataset = datasets[dataset_name]
    queries = [dataset[i] for i in range(6)]
    radius = RADIUS[dataset_name]
    with ServiceClient(port=server.port) as json_client, ServiceClient(
        port=server.port, binary=True
    ) as bin_client:
        for q in queries:
            expected_range = index.range_query(q, radius)
            expected_knn = index.knn_query(q, K)
            assert json_client.range_query(q, radius) == expected_range
            assert bin_client.range_query(q, radius) == expected_range
            assert json_client.knn_query(q, K) == expected_knn
            assert bin_client.knn_query(q, K) == expected_knn
        expected_range_many = index.range_query_many(queries, radius)
        expected_knn_many = index.knn_query_many(queries, K)
        assert json_client.range_query_many(queries, radius) == expected_range_many
        assert bin_client.range_query_many(queries, radius) == expected_range_many
        assert json_client.knn_query_many(queries, K) == expected_knn_many
        assert bin_client.knn_query_many(queries, K) == expected_knn_many


def test_mixed_negotiation_raw_requests(served_factory, datasets):
    """Content-Type and Accept are honoured independently."""
    index, server = served_factory("LA")
    query = np.asarray(datasets["LA"][0], dtype=np.float64)
    radius = RADIUS["LA"]
    expected = index.range_query(query, radius)

    def post(body, content_type, accept):
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            headers = {"Content-Type": content_type}
            if accept:
                headers["Accept"] = accept
            conn.request("POST", "/range", body, headers)
            resp = conn.getresponse()
            return resp.status, resp.getheader("Content-Type"), resp.read()
        finally:
            conn.close()

    # binary request body, default (JSON) response
    status, ctype, body = post(
        wire.dumps({"query": query, "radius": radius}),
        wire.BINARY_CONTENT_TYPE,
        None,
    )
    assert status == 200 and "application/json" in ctype
    assert json.loads(body)["ids"] == expected

    # JSON request body, binary response
    status, ctype, body = post(
        json.dumps({"query": query.tolist(), "radius": radius}).encode(),
        "application/json",
        wire.BINARY_CONTENT_TYPE,
    )
    assert status == 200 and wire.accepts_binary(ctype)
    assert body[:4] == wire.WIRE_MAGIC
    assert wire.unpack_id_list(wire.loads(body)["ids"]) == expected


def test_binary_errors_surface_as_client_errors(served_factory):
    _, server = served_factory("LA")
    with ServiceClient(port=server.port, binary=True) as client:
        # wrong query type for a vector index -> 400, error framed binary
        with pytest.raises(ServiceClientError):
            client.range_query("not-a-vector", 1.0)
        # wrong dimensionality -> server-side error, still a clean exception
        with pytest.raises(ServiceClientError):
            client.range_query(np.zeros(1), 1.0)


def test_malformed_binary_body_is_bad_request(served_factory):
    _, server = served_factory("LA")
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        conn.request(
            "POST",
            "/range",
            b"RPWB\x01garbage",
            {"Content-Type": wire.BINARY_CONTENT_TYPE},
        )
        assert conn.getresponse().status == 400
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# structured access log
# ---------------------------------------------------------------------------


def test_access_log_emits_one_json_line_per_request(served_factory, datasets):
    log = io.StringIO()
    index, server = served_factory("LA", access_log=log)
    radius = RADIUS["LA"]
    with ServiceClient(port=server.port) as json_client, ServiceClient(
        port=server.port, binary=True
    ) as bin_client:
        json_client.range_query(datasets["LA"][0], radius)
        bin_client.knn_query(datasets["LA"][1], K)
        json_client.healthz()
    # the log line is written just after the response is flushed to the
    # client, so give the handler threads a moment to finish
    deadline = time.monotonic() + 5.0
    while log.getvalue().count("\n") < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    lines = [json.loads(line) for line in log.getvalue().splitlines()]
    assert len(lines) == 3
    by_path = {entry["path"]: entry for entry in lines}
    assert by_path["/range"]["codec"] == "json"
    assert by_path["/knn"]["codec"] == "binary"
    for entry in lines:
        assert entry["status"] == 200
        assert entry["wall_ms"] >= 0
        assert entry["nbytes"] > 0
        assert entry["ts"] > 0
        assert entry["method"] in ("GET", "POST")


def test_access_log_off_by_default(served_factory, datasets):
    index, server = served_factory("LA")
    assert server.access_log is None
    with ServiceClient(port=server.port) as client:
        client.range_query(datasets["LA"][0], RADIUS["LA"])
