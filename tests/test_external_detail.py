"""Detailed behaviour of the external indexes (paper Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    MIndex,
    MIndexStar,
    MetricSpace,
    OmniBPlusTree,
    OmniRTree,
    OmniSequentialFile,
    PMTree,
    SPBTree,
    brute_force_range,
    make_la,
    make_words,
    select_pivots,
)


@pytest.fixture(scope="module")
def la():
    return make_la(500, seed=81)


@pytest.fixture(scope="module")
def la_pivots(la):
    return select_pivots(MetricSpace(la), 4, strategy="hfi", seed=1)


class TestPMTreeDetail:
    def test_leaf_entries_carry_vectors(self, la, la_pivots):
        index = PMTree.build(
            MetricSpace(la, CostCounters()), la_pivots, page_size=4096
        )
        for _, entry in index.mtree.iter_leaf_entries():
            assert entry.vec is not None
            assert entry.vec.shape == (len(la_pivots),)

    def test_routing_mbbs_cover_subtrees(self, la, la_pivots):
        index = PMTree.build(
            MetricSpace(la, CostCounters()), la_pivots, page_size=4096
        )
        tree = index.mtree

        def check(page_id):
            node = tree.read_node(page_id)
            if node.is_leaf:
                vecs = [e.vec for e in node.entries]
                if not vecs:
                    return None
                return np.min(vecs, axis=0), np.max(vecs, axis=0)
            lows, highs = [], []
            for e in node.entries:
                child_box = check(e.child_page)
                if child_box is None:
                    continue
                assert e.mbb_lows is not None
                assert np.all(e.mbb_lows <= child_box[0] + 1e-9)
                assert np.all(e.mbb_highs >= child_box[1] - 1e-9)
                lows.append(e.mbb_lows)
                highs.append(e.mbb_highs)
            if not lows:
                return None
            return np.min(lows, axis=0), np.max(highs, axis=0)

        check(tree.root_page)

    def test_box_pruning_reduces_compdists(self, la, la_pivots):
        """PM-tree (ball+box) should verify fewer than the plain M-tree."""
        from repro import MTreeIndex

        pm = PMTree.build(MetricSpace(la, CostCounters()), la_pivots, page_size=4096)
        mt = MTreeIndex.build(MetricSpace(la, CostCounters()), page_size=4096, seed=0)
        costs = {}
        for name, index in (("pm", pm), ("mt", mt)):
            counters = index.space.counters
            counters.reset()
            for qi in (3, 70, 140):
                index.range_query(la[qi], 400.0)
            costs[name] = counters.distance_computations
        assert costs["pm"] <= costs["mt"]


class TestOmniDetail:
    def test_sequential_scans_every_vector_page(self, la, la_pivots):
        index = OmniSequentialFile.build(MetricSpace(la, CostCounters()), la_pivots)
        counters = index.space.counters
        counters.reset()
        index.range_query(la[0], 100.0)
        assert counters.page_reads >= len(index._vector_pages)

    def test_bplus_one_tree_per_pivot(self, la, la_pivots):
        index = OmniBPlusTree.build(MetricSpace(la, CostCounters()), la_pivots)
        assert len(index.trees) == len(la_pivots)
        for j, tree in enumerate(index.trees):
            keys = [k for k, _ in tree.items()]
            assert keys == sorted(keys)
            assert len(keys) == len(la)

    def test_rtree_leaf_count(self, la, la_pivots):
        index = OmniRTree.build(MetricSpace(la, CostCounters()), la_pivots)
        assert len(index.rtree) == len(la)
        index.rtree.check_invariants()

    def test_raf_fetch_costs_pages(self, la, la_pivots):
        index = OmniRTree.build(MetricSpace(la, CostCounters()), la_pivots)
        counters = index.space.counters
        counters.reset()
        index._fetch(42)
        assert counters.page_reads == 1

    @pytest.mark.parametrize(
        "cls", [OmniSequentialFile, OmniBPlusTree, OmniRTree]
    )
    def test_family_agreement(self, la, la_pivots, cls):
        index = cls.build(MetricSpace(la, CostCounters()), la_pivots)
        q = la[17]
        assert index.range_query(q, 600.0) == brute_force_range(
            MetricSpace(la), q, 600.0
        )


class TestMIndexDetail:
    def _build(self, dataset, pivots, star=False, maxnum=48):
        cls = MIndexStar if star else MIndex
        return cls.build(MetricSpace(dataset, CostCounters()), pivots, maxnum=maxnum)

    def test_cluster_paths_partition_dataset(self, la, la_pivots):
        index = self._build(la, la_pivots)
        total = 0
        for leaf in self._leaves(index.root):
            members = list(
                index.btree.range_scan(
                    (leaf.path, -float("inf")), (leaf.path, float("inf"))
                )
            )
            assert len(members) == leaf.count
            total += leaf.count
        assert total == len(la)

    def _leaves(self, node):
        if node.is_leaf:
            yield node
            return
        for child in node.children.values():
            yield from self._leaves(child)

    def test_keys_use_first_path_pivot(self, la, la_pivots):
        index = self._build(la, la_pivots)
        mapping = index.mapping
        for key, (object_id, _ptr) in index.btree.items():
            path, dist = key
            assert dist == pytest.approx(float(mapping.vector(object_id)[path[0]]))

    def test_nearest_pivot_assignment(self, la, la_pivots):
        index = self._build(la, la_pivots)
        mapping = index.mapping
        for key, (object_id, _ptr) in index.btree.items():
            path, _ = key
            vec = mapping.vector(object_id)
            assert path[0] == int(np.argmin(vec))

    def test_maxnum_respected_after_build(self, la, la_pivots):
        index = self._build(la, la_pivots, maxnum=32)
        for leaf in self._leaves(index.root):
            if len(leaf.path) < len(la_pivots):
                assert leaf.count <= 32

    def test_star_validation_skips_work_at_large_radius(self, la, la_pivots):
        plain = self._build(la, la_pivots, star=False)
        star = self._build(la, la_pivots, star=True)
        q = la[3]
        radius = 6000.0  # most of the dataset qualifies
        costs = {}
        for name, index in (("plain", plain), ("star", star)):
            counters = index.space.counters
            counters.reset()
            a = index.range_query(q, radius)
            costs[name] = (counters.distance_computations, a)
        assert costs["plain"][1] == costs["star"][1]
        assert costs["star"][0] <= costs["plain"][0]

    def test_insert_splits_cluster(self, la, la_pivots):
        index = self._build(la, la_pivots, maxnum=600)  # one fat cluster
        pre_leaves = sum(1 for _ in self._leaves(index.root))
        index.maxnum = 32  # force the next inserts to split
        for i in range(5):
            index.delete(i)
            index.insert(la[i], object_id=i)
        post_leaves = sum(1 for _ in self._leaves(index.root))
        assert post_leaves >= pre_leaves
        q = la[2]
        assert index.range_query(q, 700.0) == brute_force_range(
            MetricSpace(la), q, 700.0
        )


class TestSPBTreeDetail:
    def test_raf_in_key_order(self, la, la_pivots):
        index = SPBTree.build(MetricSpace(la, CostCounters()), la_pivots)
        pages_in_key_order = [
            index._pointers[object_id].page_id
            for _, (object_id, _ptr) in index.btree.items()
        ]
        # RAF pages must be non-decreasing when walked in key order
        assert pages_in_key_order == sorted(pages_in_key_order)

    def test_validation_avoids_raf_reads(self, la, la_pivots):
        index = SPBTree.build(MetricSpace(la, CostCounters()), la_pivots)
        counters = index.space.counters
        q = la[3]
        radius = 9000.0  # nearly everything validates via Lemma 4
        counters.reset()
        result = index.range_query(q, radius)
        want = brute_force_range(MetricSpace(la), q, radius)
        assert result == want
        # far fewer computations than answers: validation did the work
        assert counters.distance_computations < len(want) / 2

    def test_mbb_aux_covers_leaf_cells(self, la, la_pivots):
        index = SPBTree.build(MetricSpace(la, CostCounters()), la_pivots)

        def check(page_id):
            node = index.btree.read_node(page_id)
            if node.is_leaf:
                cells = [index.curve.decode(k) for k in node.keys]
                if not cells:
                    return None
                arr = np.asarray(cells)
                return arr.min(axis=0), arr.max(axis=0)
            for child, aux in zip(node.children, node.aux):
                box = check(child)
                if box is None or aux is None:
                    continue
                lows, highs = np.asarray(aux[0]), np.asarray(aux[1])
                assert np.all(lows <= box[0]) and np.all(highs >= box[1])
            return None

        check(index.btree.root_page)

    def test_clipped_cell_never_validates(self, la, la_pivots):
        index = SPBTree.build(MetricSpace(la, CostCounters()), la_pivots)
        clipped = np.full(len(la_pivots), index.curve.max_coordinate)
        assert index._cell_upper_bound(np.zeros(len(la_pivots)), clipped) == float(
            "inf"
        )

    def test_eps_covers_max_distance(self, la, la_pivots):
        index = SPBTree.build(MetricSpace(la, CostCounters()), la_pivots)
        max_cell = index._grid_cell(index.mapping.matrix.max(axis=0))
        assert max_cell.max() <= index.curve.max_coordinate


class TestWordsExternal:
    """String objects through every external index (serialisation paths)."""

    @pytest.mark.parametrize(
        "builder",
        [
            lambda s, p: PMTree.build(s, p, page_size=4096),
            lambda s, p: OmniRTree.build(s, p),
            lambda s, p: MIndexStar.build(s, p, maxnum=48),
            lambda s, p: SPBTree.build(s, p),
        ],
    )
    def test_words_roundtrip(self, builder):
        words = make_words(300, seed=82)
        pivots = select_pivots(MetricSpace(words), 3, strategy="hfi", seed=1)
        index = builder(MetricSpace(words, CostCounters()), pivots)
        q = words[9]
        assert index.range_query(q, 4.0) == brute_force_range(
            MetricSpace(words), q, 4.0
        )
