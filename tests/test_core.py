"""Core framework: counters, datasets, metric space, queries, mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    Dataset,
    EditDistance,
    KnnHeap,
    L2,
    MetricSpace,
    Neighbor,
    PivotMapping,
    brute_force_knn,
    brute_force_range,
    dataset_statistics,
    make_color,
    make_la,
    make_synthetic,
    make_uniform,
    make_words,
)


class TestCounters:
    def test_accumulation(self):
        c = CostCounters()
        c.add_distances(3)
        c.add_page_read(2)
        c.add_page_write()
        snap = c.snapshot()
        assert snap.distance_computations == 3
        assert snap.page_reads == 2
        assert snap.page_writes == 1
        assert snap.page_accesses == 3

    def test_measure_block(self):
        c = CostCounters()
        with c.measure() as m:
            c.add_distances(10)
            c.add_page_read(4)
        assert m.compdists == 10
        assert m.page_accesses == 4
        assert m.cpu_seconds >= 0

    def test_reset(self):
        c = CostCounters()
        c.add_distances(5)
        c.reset()
        assert c.distance_computations == 0

    def test_snapshot_subtraction(self):
        c = CostCounters()
        a = c.snapshot()
        c.add_distances(7)
        b = c.snapshot()
        assert (b - a).distance_computations == 7


class TestDataset:
    def test_vector_dataset(self):
        data = np.arange(12, dtype=np.float64).reshape(4, 3)
        ds = Dataset(data, L2, name="t")
        assert len(ds) == 4
        assert ds.is_vector
        assert np.array_equal(ds[1], [3, 4, 5])
        assert np.array_equal(ds.gather([0, 2]), data[[0, 2]])

    def test_list_dataset(self):
        ds = Dataset(["ab", "cd"], EditDistance())
        assert not ds.is_vector
        assert ds[0] == "ab"
        assert ds.gather([1]) == ["cd"]

    def test_add_vector(self):
        ds = Dataset(np.zeros((2, 3)), L2)
        new_id = ds.add([1.0, 2.0, 3.0])
        assert new_id == 2
        assert len(ds) == 3
        with pytest.raises(ValueError):
            ds.add([1.0, 2.0])

    def test_add_string(self):
        ds = Dataset(["a"], EditDistance())
        assert ds.add("bc") == 1
        assert ds[1] == "bc"

    def test_subset(self):
        ds = make_uniform(20, dim=2, seed=1)
        sub = ds.subset([3, 5, 7])
        assert len(sub) == 3
        assert np.array_equal(sub[0], ds[3])

    def test_object_nbytes(self):
        ds = Dataset(np.zeros((2, 3)), L2)
        assert ds.object_nbytes(0) == 24
        ws = Dataset(["abc"], EditDistance())
        assert ws.object_nbytes(0) == 3


class TestGenerators:
    @pytest.mark.parametrize(
        "maker,name,distance",
        [
            (make_la, "LA", "L2"),
            (make_words, "Words", "edit"),
            (make_color, "Color", "L1"),
            (make_synthetic, "Synthetic", "Linf"),
        ],
    )
    def test_names_and_metrics(self, maker, name, distance):
        ds = maker(100, seed=0)
        assert ds.name == name
        assert ds.distance.name == distance
        assert len(ds) == 100

    def test_la_domain(self):
        ds = make_la(500, seed=1)
        assert ds.objects.min() >= 0 and ds.objects.max() <= 10_000
        assert ds.objects.shape[1] == 2

    def test_words_lengths(self):
        ds = make_words(500, seed=1)
        lengths = [len(w) for w in ds]
        assert min(lengths) >= 1 and max(lengths) <= 34
        assert len(set(ds.objects)) == 500  # no duplicates

    def test_color_shape_and_domain(self):
        ds = make_color(100, seed=1)
        assert ds.objects.shape == (100, 282)
        assert ds.objects.min() >= -255 and ds.objects.max() <= 255

    def test_synthetic_integer_values(self):
        ds = make_synthetic(100, seed=1)
        assert np.array_equal(ds.objects, np.rint(ds.objects))
        assert ds.distance.is_discrete

    def test_determinism(self):
        a, b = make_la(50, seed=9), make_la(50, seed=9)
        assert np.array_equal(a.objects, b.objects)

    def test_statistics_columns(self):
        stats = dataset_statistics(make_synthetic(300, seed=2), sample_pairs=2000)
        row = stats.row()
        assert row["Dataset"] == "Synthetic"
        assert row["Cardinality"] == 300
        assert float(row["Int. Dim."]) > 0
        assert row["Dis. Measure"] == "Linf"

    def test_statistics_needs_two(self):
        with pytest.raises(ValueError):
            dataset_statistics(Dataset(np.zeros((1, 2)), L2))


class TestMetricSpace:
    def setup_method(self):
        self.ds = make_uniform(50, dim=3, seed=4)
        self.counters = CostCounters()
        self.space = MetricSpace(self.ds, self.counters)

    def test_counts_single(self):
        self.space.d(self.ds[0], self.ds[1])
        assert self.counters.distance_computations == 1

    def test_counts_batch(self):
        self.space.d_many(self.ds[0], self.ds.objects)
        assert self.counters.distance_computations == 50

    def test_counts_ids(self):
        self.space.d_ids(self.ds[0], [1, 2, 3])
        assert self.counters.distance_computations == 3

    def test_counts_pairwise(self):
        self.space.pairwise_ids([0, 1], [2, 3, 4])
        assert self.counters.distance_computations == 6

    def test_empty_batch(self):
        out = self.space.d_ids(self.ds[0], [])
        assert out.size == 0
        assert self.counters.distance_computations == 0

    def test_batch_matches_scalar(self):
        batch = self.space.d_many(self.ds[0], self.ds.objects)
        scalar = [self.ds.distance(self.ds[0], self.ds[i]) for i in range(50)]
        assert np.allclose(batch, scalar)


class TestKnnHeap:
    def test_radius_infinite_until_full(self):
        h = KnnHeap(3)
        h.consider(0, 5.0)
        assert h.radius == float("inf")
        h.consider(1, 2.0)
        h.consider(2, 7.0)
        assert h.radius == 7.0

    def test_tightening(self):
        h = KnnHeap(2)
        h.consider(0, 5.0)
        h.consider(1, 4.0)
        h.consider(2, 1.0)  # evicts 5.0
        assert h.radius == 4.0
        assert [n.object_id for n in h.neighbors()] == [2, 1]

    def test_rejects_worse(self):
        h = KnnHeap(1)
        h.consider(0, 1.0)
        assert not h.consider(1, 2.0)
        assert h.ids() == [0]

    def test_ordered_output(self):
        h = KnnHeap(4)
        for i, d in enumerate([3.0, 1.0, 4.0, 2.0]):
            h.consider(i, d)
        assert h.distances() == [1.0, 2.0, 3.0, 4.0]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KnnHeap(0)

    def test_neighbor_ordering(self):
        assert Neighbor(1.0, 5) < Neighbor(2.0, 1)
        assert Neighbor(1.0, 1) < Neighbor(1.0, 2)


class TestBruteForce:
    def test_range_and_knn_agree(self):
        ds = make_uniform(100, dim=2, seed=5)
        space = MetricSpace(ds)
        q = ds[0]
        nn = brute_force_knn(space, q, 10)
        r = nn[-1].distance
        ids = brute_force_range(space, q, r)
        assert set(n.object_id for n in nn) <= set(ids)


class TestPivotMapping:
    def test_matrix_shape_and_values(self):
        ds = make_uniform(30, dim=2, seed=6)
        space = MetricSpace(ds)
        pm = PivotMapping(space, [0, 5])
        assert pm.matrix.shape == (30, 2)
        assert pm.matrix[0, 0] == 0.0  # pivot to itself
        assert pm.matrix[7, 1] == pytest.approx(ds.distance(ds[7], ds[5]))

    def test_build_cost_counted(self):
        ds = make_uniform(30, dim=2, seed=6)
        counters = CostCounters()
        PivotMapping(MetricSpace(ds, counters), [0, 5, 9])
        assert counters.distance_computations == 90

    def test_map_query_counts(self):
        ds = make_uniform(30, dim=2, seed=6)
        counters = CostCounters()
        pm = PivotMapping(MetricSpace(ds, counters), [0, 5])
        counters.reset()
        vec = pm.map_query(ds[3])
        assert counters.distance_computations == 2
        assert vec.shape == (2,)

    def test_requires_pivots(self):
        ds = make_uniform(10, dim=2, seed=6)
        with pytest.raises(ValueError):
            PivotMapping(MetricSpace(ds), [])

    def test_append(self):
        ds = make_uniform(10, dim=2, seed=6)
        pm = PivotMapping(MetricSpace(ds), [0, 1])
        row = pm.append([1.0, 2.0])
        assert row == 10
        assert pm.matrix.shape == (11, 2)
        with pytest.raises(ValueError):
            pm.append([1.0, 2.0, 3.0])

    def test_max_distance_bound(self):
        ds = make_uniform(30, dim=2, seed=6)
        pm = PivotMapping(MetricSpace(ds), [0, 5])
        bound = pm.max_distance_bound()
        true_max = max(
            ds.distance(ds[i], ds[j]) for i in range(30) for j in range(30)
        )
        assert bound >= true_max
