"""Query service subsystem: snapshots, result cache, dispatcher, facade.

Covers the service layer's three contracts:

* snapshot round-trips restore every index family with identical answers
  and zero build-time distance computations;
* the LRU result cache returns exact answers, folds hit/miss/eviction
  stats into CostCounters, and is invalidated by index mutations;
* the micro-batching dispatcher coalesces concurrent single-query callers
  into batch calls without changing any answer.

Plus the satellite contracts: per-shard counters make ShardedIndex exact
under process pools (thread-pool == process-pool == serial counts), and
AESA's insert signature matches the base class.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from conftest import RADIUS, indexes_for
from repro import (
    CostCounters,
    MetricSpace,
    QueryService,
    ShardedIndex,
    SnapshotError,
    UnsupportedOperation,
    load_index,
    save_index,
    select_pivots,
    snapshot_info,
)
from repro.core.index import brute_force_knn, brute_force_range
from repro.service import (
    SNAPSHOT_FORMAT_VERSION,
    MicroBatchDispatcher,
    QueryResultCache,
    query_key,
)
from repro.tables import AESA, LAESA

K = 5
N_QUERIES = 5


def _sample_queries(dataset, n=N_QUERIES, seed=17):
    rng = np.random.default_rng(seed)
    return [dataset[int(i)] for i in rng.choice(len(dataset), size=n, replace=False)]


# ---------------------------------------------------------------------------
# snapshot round-trips, every index family
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("index_name", indexes_for("Words"))
def test_snapshot_roundtrip_words(datasets, built_indexes, tmp_path, index_name):
    """build -> query -> snapshot -> restore -> identical answers, 0 compdists."""
    dataset = datasets["Words"]
    index = built_indexes("Words", index_name)
    queries = _sample_queries(dataset)
    radius = RADIUS["Words"]
    expected_range = [index.range_query(q, radius) for q in queries]
    expected_knn = [index.knn_query(q, K) for q in queries]

    path = tmp_path / f"{index_name}.snap"
    info = save_index(index, path)
    assert info.format_version == SNAPSHOT_FORMAT_VERSION
    assert info.n_objects == len(dataset)

    restore_counters = CostCounters()
    restored = load_index(path, counters=restore_counters)
    # the whole point: restoring performs no distance computations and
    # writes no pages (the build already happened)
    assert restore_counters.distance_computations == 0
    assert restore_counters.page_writes == 0

    assert [restored.range_query(q, radius) for q in queries] == expected_range
    assert [restored.knn_query(q, K) for q in queries] == expected_knn


@pytest.mark.parametrize("index_name", ("LAESA", "CPT", "MVPT", "M-index*"))
def test_snapshot_roundtrip_vector_dataset(
    datasets, built_indexes, tmp_path, index_name
):
    """Vector (LA) round-trips, including a disk-based index's page store."""
    dataset = datasets["LA"]
    index = built_indexes("LA", index_name)
    queries = _sample_queries(dataset)
    radius = RADIUS["LA"]
    expected = index.range_query_many(queries, radius)

    path = tmp_path / f"{index_name}.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert counters.distance_computations == 0
    assert restored.range_query_many(queries, radius) == expected
    assert restored.knn_query_many(queries, K) == index.knn_query_many(queries, K)


def test_snapshot_roundtrip_sharded(datasets, tmp_path):
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    sharded = ShardedIndex.build(
        space,
        lambda s: LAESA.build(s, select_pivots(s, 3, strategy="hfi", seed=0)),
        n_shards=3,
        seed=1,
    )
    queries = _sample_queries(dataset)
    radius = RADIUS["LA"]
    expected = sharded.range_query_many(queries, radius)

    path = tmp_path / "sharded.snap"
    save_index(sharded, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert counters.distance_computations == 0
    assert restored.range_query_many(queries, radius) == expected
    # restored sharded indexes come back serial: pools don't serialise
    assert restored.executor is None


def test_restored_per_shard_counters_not_double_counted(datasets, tmp_path):
    """Restoring a per-shard-counters ShardedIndex must keep the shards'
    counters private -- collapsing them onto the parent's would count every
    shard call twice (once direct, once via the merged delta)."""
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    index = ShardedIndex.build(
        space, _build_shard_laesa, n_shards=3, seed=2, per_shard_counters=True
    )
    queries = _sample_queries(dataset, n=3)
    before = space.counters.snapshot()
    expected = index.range_query_many(queries, RADIUS["LA"])
    original_cost = (space.counters.snapshot() - before).distance_computations

    path = tmp_path / "per-shard.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert restored.range_query_many(queries, RADIUS["LA"]) == expected
    assert counters.distance_computations == original_cost
    # the shards keep private accumulators distinct from the parent's
    assert all(
        shard.space.counters is not restored.space.counters
        for shard in restored.shards
    )


def test_restored_disk_index_still_counts_page_accesses(
    datasets, built_indexes, tmp_path
):
    """CPT's pager survives the trip: restored queries still report PA."""
    index = built_indexes("LA", "CPT")
    queries = _sample_queries(datasets["LA"])
    path = tmp_path / "cpt.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    restored.range_query_many(queries, RADIUS["LA"])
    assert counters.page_reads > 0
    assert counters.distance_computations > 0


def test_snapshot_info_reads_header_only(datasets, built_indexes, tmp_path):
    index = built_indexes("Words", "LAESA")
    path = tmp_path / "laesa.snap"
    written = save_index(index, path)
    info = snapshot_info(path)
    assert info == written
    assert info.index_name == "LAESA"
    assert info.distance_name == "edit"
    assert info.payload_bytes > 0


def test_snapshot_rejects_bad_magic(tmp_path):
    path = tmp_path / "junk.snap"
    path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
    with pytest.raises(SnapshotError, match="bad magic"):
        load_index(path)


def test_snapshot_rejects_future_format(datasets, built_indexes, tmp_path):
    import json

    from repro.service import SNAPSHOT_MAGIC

    index = built_indexes("Words", "LAESA")
    path = tmp_path / "laesa.snap"
    save_index(index, path)
    blob = path.read_bytes()
    header_len = int.from_bytes(blob[8:12], "big")
    header = json.loads(blob[12 : 12 + header_len])
    header["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
    new_header = json.dumps(header, sort_keys=True).encode()
    path.write_bytes(
        SNAPSHOT_MAGIC
        + len(new_header).to_bytes(4, "big")
        + new_header
        + blob[12 + header_len :]
    )
    with pytest.raises(SnapshotError, match="format"):
        load_index(path)


def test_snapshot_rejects_truncated_payload(datasets, built_indexes, tmp_path):
    index = built_indexes("Words", "LAESA")
    path = tmp_path / "laesa.snap"
    save_index(index, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 100])
    with pytest.raises(SnapshotError, match="truncated"):
        load_index(path)


# ---------------------------------------------------------------------------
# LRU result cache
# ---------------------------------------------------------------------------


def test_query_key_canonicalises_equal_vectors():
    a = np.array([1.0, 2.0, 3.0])
    assert query_key(a) == query_key(a.copy())
    assert query_key(a) != query_key(np.array([1.0, 2.0, 4.0]))
    assert query_key("word") == query_key("word")
    assert query_key((1, 2)) == query_key((1, 2))
    # dtype matters: float32 bytes differ from float64
    assert query_key(a) != query_key(a.astype(np.float32))


def test_cache_hit_miss_eviction_stats_fold_into_counters():
    counters = CostCounters()
    cache = QueryResultCache(capacity=2, counters=counters)
    k1 = cache.make_key("idx", "range", "alpha", 2.0)
    k2 = cache.make_key("idx", "range", "beta", 2.0)
    k3 = cache.make_key("idx", "range", "gamma", 2.0)

    assert cache.get(k1) is None  # miss
    cache.put(k1, [1, 2])
    assert cache.get(k1) == [1, 2]  # hit
    cache.put(k2, [3])
    cache.put(k3, [4])  # evicts k1 (LRU)
    assert cache.get(k1) is None  # miss after eviction
    assert cache.hits == 1 and cache.misses == 2 and cache.evictions == 1
    assert counters.cache_hits == 1
    assert counters.cache_misses == 2
    assert counters.cache_evictions == 1
    snap = counters.snapshot()
    assert snap.cache_hits == 1 and snap.cache_misses == 2


def test_cache_returns_copies():
    cache = QueryResultCache(capacity=4)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1, 2, 3])
    first = cache.get(key)
    first.append(99)
    assert cache.get(key) == [1, 2, 3]


def test_cache_capacity_zero_disables():
    cache = QueryResultCache(capacity=0)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1])
    assert cache.get(key) is None
    assert len(cache) == 0


def test_cache_invalidate_per_index():
    cache = QueryResultCache(capacity=8)
    cache.put(cache.make_key("a", "range", "q", 1.0), [1])
    cache.put(cache.make_key("b", "range", "q", 1.0), [2])
    assert cache.invalidate("a") == 1
    assert cache.get(cache.make_key("b", "range", "q", 1.0)) == [2]
    assert cache.invalidate() == 1  # drops everything left
    assert len(cache) == 0


def test_cache_rejects_puts_older_than_invalidation():
    """An answer computed before a concurrent mutation must not be cached."""
    cache = QueryResultCache(capacity=8)
    key = cache.make_key("idx", "range", "q", 1.0)
    generation = cache.generation("idx")
    cache.invalidate("idx")  # the mutation lands while the answer computes
    cache.put(key, [1, 2], generation=generation)  # stale: dropped
    assert cache.get(key) is None
    fresh = cache.generation("idx")
    cache.put(key, [3], generation=fresh)
    assert cache.get(key) == [3]
    cache.invalidate()  # global invalidation bumps every index's epoch
    cache.put(key, [4], generation=fresh)
    assert cache.get(key) is None


def test_cache_is_safe_under_concurrent_mutation():
    """get/put/invalidate from many threads: no lost structure, no crashes."""
    cache = QueryResultCache(capacity=32, counters=CostCounters())
    stop = threading.Event()
    errors = []

    def hammer(worker_id):
        try:
            i = 0
            while not stop.is_set():
                key = cache.make_key("idx", "range", f"q{worker_id}-{i % 40}", 1.0)
                cache.put(key, [i])
                cache.get(key)
                if i % 17 == 0:
                    cache.invalidate("idx")
                i += 1
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    time.sleep(0.3)
    stop.set()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) <= 32


def test_radius_distinguishes_cache_entries(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    with QueryService(index, use_dispatcher=False) as service:
        q = datasets["Words"][0]
        small = service.range_query(q, 1.0)
        large = service.range_query(q, 4.0)
        assert small == index.range_query(q, 1.0)
        assert large == index.range_query(q, 4.0)
        assert set(small) <= set(large)
        assert service.cache.misses == 2  # distinct radii never collide


# ---------------------------------------------------------------------------
# micro-batching dispatcher
# ---------------------------------------------------------------------------


def _echo_executor(kind, param, queries):
    return [(kind, param, q) for q in queries]


def test_dispatcher_answers_in_submission_order():
    with MicroBatchDispatcher(_echo_executor, max_batch_size=4, max_wait_ms=5.0) as d:
        futures = [d.submit("range", f"q{i}", 2.0) for i in range(10)]
        results = [f.result(timeout=5) for f in futures]
    assert results == [("range", 2.0, f"q{i}") for i in range(10)]


def test_dispatcher_coalesces_concurrent_callers():
    calls = []

    def executor(kind, param, queries):
        calls.append(len(queries))
        time.sleep(0.002)  # give the pending queue time to fill
        return [None for _ in queries]

    with MicroBatchDispatcher(executor, max_batch_size=16, max_wait_ms=50.0) as d:
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda i: d.submit("range", i, 1.0).result(), range(64)))
        stats = d.stats
    assert stats.queries == 64
    # coalescing must actually happen: far fewer batches than queries
    assert stats.batches < 64
    assert stats.mean_batch_size > 1.0
    assert max(calls) <= 16  # max_batch_size respected


def test_dispatcher_separates_incompatible_groups():
    seen = []

    def executor(kind, param, queries):
        seen.append((kind, param, len(queries)))
        return [0 for _ in queries]

    with MicroBatchDispatcher(executor, max_batch_size=8, max_wait_ms=20.0) as d:
        futures = [d.submit("range", i, 1.0) for i in range(3)]
        futures += [d.submit("range", i, 2.0) for i in range(3)]
        futures += [d.submit("knn", i, 2.0) for i in range(3)]
        for f in futures:
            f.result(timeout=5)
    groups = {(kind, param) for kind, param, _ in seen}
    # one group per (kind, param): a radius-1 MRQ never batches with a
    # radius-2 MRQ or with a k=2 kNN
    assert groups == {("range", 1.0), ("range", 2.0), ("knn", 2.0)}


def test_dispatcher_propagates_executor_errors():
    def executor(kind, param, queries):
        raise ValueError("boom")

    with MicroBatchDispatcher(executor, max_batch_size=4, max_wait_ms=1.0) as d:
        future = d.submit("range", "q", 1.0)
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=5)


def test_dispatcher_close_drains_pending_and_rejects_new():
    d = MicroBatchDispatcher(_echo_executor, max_batch_size=64, max_wait_ms=10_000.0)
    futures = [d.submit("range", i, 1.0) for i in range(5)]
    d.close()  # max_wait is huge: only the close-drain can resolve these
    assert [f.result(timeout=5) for f in futures] == [
        ("range", 1.0, i) for i in range(5)
    ]
    with pytest.raises(RuntimeError, match="closed"):
        d.submit("range", "late", 1.0)
    d.close()  # idempotent


def test_dispatcher_rejects_bad_arguments():
    with pytest.raises(ValueError):
        MicroBatchDispatcher(_echo_executor, max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatchDispatcher(_echo_executor, max_wait_ms=-1.0)
    with MicroBatchDispatcher(_echo_executor) as d:
        with pytest.raises(ValueError, match="kind"):
            d.submit("nearest", "q", 1.0)


# ---------------------------------------------------------------------------
# QueryService facade
# ---------------------------------------------------------------------------


def test_service_answers_match_brute_force(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset, n=8)
    radius = RADIUS["Words"]
    scratch = MetricSpace(dataset)
    with QueryService(index, max_batch_size=8, max_wait_ms=1.0) as service:
        with ThreadPoolExecutor(max_workers=6) as pool:
            range_answers = list(
                pool.map(lambda q: service.range_query(q, radius), queries)
            )
            knn_answers = list(pool.map(lambda q: service.knn_query(q, K), queries))
    assert range_answers == [brute_force_range(scratch, q, radius) for q in queries]
    assert knn_answers == [brute_force_knn(scratch, q, K) for q in queries]


def test_service_warm_cache_skips_index_work(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset, n=6)
    radius = RADIUS["Words"]
    counters = CostCounters()
    with QueryService(index, counters=counters, use_dispatcher=False) as service:
        cold = [service.range_query(q, radius) for q in queries]
        after_cold = counters.snapshot()
        warm = [service.range_query(q, radius) for q in queries]
        delta = counters.snapshot() - after_cold
    assert warm == cold
    assert delta.distance_computations == 0  # pure cache hits
    assert delta.cache_hits == len(queries)


def test_service_batch_entry_points_are_cache_aware(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "MVPT")
    queries = _sample_queries(dataset, n=6)
    radius = RADIUS["Words"]
    with QueryService(index, use_dispatcher=False) as service:
        first = service.range_query_many(queries, radius)
        # mixed batch: 6 hits + 2 misses -> only 2 queries reach the index
        extra = _sample_queries(dataset, n=8, seed=18)[6:]
        mixed = queries + extra
        answers = service.range_query_many(mixed, radius)
    assert answers[: len(queries)] == first
    assert answers[len(queries) :] == index.range_query_many(extra, radius)
    assert service.cache.hits >= len(queries)


def test_service_deduplicates_identical_queries_in_flight(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    q = dataset[3]
    radius = RADIUS["Words"]
    counters = CostCounters()
    expected = index.range_query(q, radius)
    with QueryService(index, counters=counters, use_dispatcher=False) as service:
        answers = service.range_query_many([q, q, q, q], radius)
    assert answers == [expected] * 4
    # one evaluation: the l pivot distances + the survivor verifications,
    # not four times that
    single = CostCounters()
    with QueryService(
        index, counters=single, cache_size=0, use_dispatcher=False
    ) as fresh:
        fresh.range_query(q, radius)
    assert counters.distance_computations == single.distance_computations


def test_service_mutations_invalidate_cache(datasets, pivots):
    dataset = datasets["Words"]
    space = MetricSpace(dataset, CostCounters())
    index = LAESA.build(space, pivots["Words"])
    q = dataset[0]
    radius = RADIUS["Words"]
    with QueryService(index, use_dispatcher=False) as service:
        before = service.range_query(q, radius)
        victim = before[-1]
        service.delete(victim)
        after_delete = service.range_query(q, radius)
        assert victim not in after_delete
        service.insert(dataset[victim], object_id=victim)
        assert service.range_query(q, radius) == before


def test_service_from_snapshot_roundtrip(datasets, built_indexes, tmp_path):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset)
    radius = RADIUS["Words"]
    path = tmp_path / "svc.snap"
    with QueryService(index, use_dispatcher=False) as service:
        expected = service.range_query_many(queries, radius)
        service.save(path)
    with QueryService.from_snapshot(path, use_dispatcher=False) as restored:
        assert restored.counters.distance_computations == 0
        assert restored.range_query_many(queries, radius) == expected
        stats = restored.stats()
    assert stats["cache"]["misses"] == len(queries)
    assert stats["distance_computations"] > 0


def test_service_stats_shape(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    with QueryService(index) as service:
        service.range_query(datasets["Words"][0], 2.0)
        stats = service.stats()
    assert stats["index"] == "LAESA"
    assert set(stats["cache"]) >= {"hits", "misses", "evictions", "hit_rate"}
    assert set(stats["dispatcher"]) >= {"queries", "batches", "mean_batch_size"}


def test_service_submit_futures(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    q = dataset[5]
    radius = RADIUS["Words"]
    with QueryService(index, max_wait_ms=1.0) as service:
        first = service.submit_range(q, radius).result(timeout=5)
        # second submit is a cache hit: resolved future, no dispatcher trip
        batches_before = service.dispatcher.stats.batches
        second = service.submit_range(q, radius)
        assert second.done()
        assert second.result() == first
        assert service.dispatcher.stats.batches == batches_before
        knn = service.submit_knn(q, K).result(timeout=5)
    assert knn == index.knn_query(q, K)
    with QueryService(index, use_dispatcher=False) as plain:
        with pytest.raises(RuntimeError, match="use_dispatcher"):
            plain.submit_range(q, radius)


# ---------------------------------------------------------------------------
# satellite: per-shard counters under thread and process pools
# ---------------------------------------------------------------------------


def _build_shard_laesa(space):
    """Module-level so a ProcessPoolExecutor can pickle the factory."""
    return LAESA.build(space, select_pivots(space, 3, strategy="hfi", seed=0))


def _sharded_counts(datasets, executor, per_shard):
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    index = ShardedIndex.build(
        space,
        _build_shard_laesa,
        n_shards=3,
        seed=2,
        executor=executor,
        per_shard_counters=per_shard,
    )
    build_snap = space.counters.snapshot()
    queries = _sample_queries(dataset, n=4)
    answers = index.range_query_many(queries, RADIUS["LA"])
    answers_knn = index.knn_query_many(queries, K)
    single = [index.range_query(queries[0], RADIUS["LA"])]
    total = space.counters.snapshot()
    return {
        "build": build_snap.distance_computations,
        "queries": (total - build_snap).distance_computations,
        "answers": (answers, answers_knn, single),
    }


def test_counters_merge_adds_counts():
    a = CostCounters(distance_computations=3, page_reads=1, cache_hits=2)
    b = CostCounters(distance_computations=4, page_writes=5, cache_misses=6)
    a.merge(b)
    assert a.distance_computations == 7
    assert a.page_reads == 1 and a.page_writes == 5
    assert a.cache_hits == 2 and a.cache_misses == 6
    a.merge(b.snapshot())  # snapshots merge too (elapsed ignored)
    assert a.distance_computations == 11


def test_sharded_counters_equal_across_executors(datasets):
    serial = _sharded_counts(datasets, executor=None, per_shard=False)
    per_shard_serial = _sharded_counts(datasets, executor=None, per_shard=True)
    with ThreadPoolExecutor(max_workers=3) as pool:
        threaded = _sharded_counts(datasets, executor=pool, per_shard=True)
    with ProcessPoolExecutor(max_workers=2) as pool:
        processed = _sharded_counts(datasets, executor=pool, per_shard=True)
    assert (
        serial["answers"]
        == per_shard_serial["answers"]
        == threaded["answers"]
        == processed["answers"]
    )
    # the satellite contract: counts are exact in every execution mode --
    # including the process pool, where shared counters would read zero
    assert (
        serial["build"]
        == per_shard_serial["build"]
        == threaded["build"]
        == processed["build"]
    )
    assert (
        serial["queries"]
        == per_shard_serial["queries"]
        == threaded["queries"]
        == processed["queries"]
    )


def test_process_pool_with_shared_counters_loses_counts(datasets):
    """Documents *why* per_shard_counters exists: shared counters cannot
    cross a process boundary, so query work appears free."""
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    index = ShardedIndex.build(
        space, _build_shard_laesa, n_shards=3, seed=2, per_shard_counters=False
    )
    queries = _sample_queries(dataset, n=3)
    expected = index.range_query_many(queries, RADIUS["LA"])
    with ProcessPoolExecutor(max_workers=2) as pool:
        index.executor = pool
        before = space.counters.snapshot()
        answers = index.range_query_many(queries, RADIUS["LA"])
        delta = space.counters.snapshot() - before
        index.executor = None
    assert answers == expected  # results survive the boundary
    assert delta.distance_computations == 0  # ...but the counts do not


# ---------------------------------------------------------------------------
# satellite: AESA insert signature
# ---------------------------------------------------------------------------


def test_aesa_insert_signature_uniform(datasets):
    import inspect

    from repro.core.index import MetricIndex

    assert list(inspect.signature(AESA.insert).parameters) == list(
        inspect.signature(MetricIndex.insert).parameters
    )
    index = AESA.build(MetricSpace(datasets["Words"].subset(range(20))))
    with pytest.raises(UnsupportedOperation):
        index.insert("newword")
    with pytest.raises(UnsupportedOperation):
        index.insert("newword", object_id=3)
