"""Query service subsystem: snapshots, result cache, dispatcher, facade.

Covers the service layer's three contracts:

* snapshot round-trips restore every index family with identical answers
  and zero build-time distance computations;
* the LRU result cache returns exact answers, folds hit/miss/eviction
  stats into CostCounters, and is invalidated by index mutations;
* the micro-batching dispatcher coalesces concurrent single-query callers
  into batch calls without changing any answer.

Plus the satellite contracts: per-shard counters make ShardedIndex exact
under process pools (thread-pool == process-pool == serial counts), and
AESA's insert signature matches the base class.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from conftest import RADIUS, indexes_for
from repro import (
    CostCounters,
    MetricSpace,
    QueryService,
    ShardedIndex,
    SnapshotError,
    UnsupportedOperation,
    load_index,
    save_index,
    select_pivots,
    snapshot_info,
)
from repro.core.index import brute_force_knn, brute_force_range
from repro.service import (
    SNAPSHOT_FORMAT_VERSION,
    MicroBatchDispatcher,
    QueryResultCache,
    query_key,
)
from repro.tables import AESA, LAESA

K = 5
N_QUERIES = 5


def _sample_queries(dataset, n=N_QUERIES, seed=17):
    rng = np.random.default_rng(seed)
    return [dataset[int(i)] for i in rng.choice(len(dataset), size=n, replace=False)]


# ---------------------------------------------------------------------------
# snapshot round-trips, every index family
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("index_name", indexes_for("Words"))
def test_snapshot_roundtrip_words(datasets, built_indexes, tmp_path, index_name):
    """build -> query -> snapshot -> restore -> identical answers, 0 compdists."""
    dataset = datasets["Words"]
    index = built_indexes("Words", index_name)
    queries = _sample_queries(dataset)
    radius = RADIUS["Words"]
    expected_range = [index.range_query(q, radius) for q in queries]
    expected_knn = [index.knn_query(q, K) for q in queries]

    path = tmp_path / f"{index_name}.snap"
    info = save_index(index, path)
    assert info.format_version == SNAPSHOT_FORMAT_VERSION
    assert info.n_objects == len(dataset)

    restore_counters = CostCounters()
    restored = load_index(path, counters=restore_counters)
    # the whole point: restoring performs no distance computations and
    # writes no pages (the build already happened)
    assert restore_counters.distance_computations == 0
    assert restore_counters.page_writes == 0

    assert [restored.range_query(q, radius) for q in queries] == expected_range
    assert [restored.knn_query(q, K) for q in queries] == expected_knn


@pytest.mark.parametrize("index_name", ("LAESA", "CPT", "MVPT", "M-index*"))
def test_snapshot_roundtrip_vector_dataset(
    datasets, built_indexes, tmp_path, index_name
):
    """Vector (LA) round-trips, including a disk-based index's page store."""
    dataset = datasets["LA"]
    index = built_indexes("LA", index_name)
    queries = _sample_queries(dataset)
    radius = RADIUS["LA"]
    expected = index.range_query_many(queries, radius)

    path = tmp_path / f"{index_name}.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert counters.distance_computations == 0
    assert restored.range_query_many(queries, radius) == expected
    assert restored.knn_query_many(queries, K) == index.knn_query_many(queries, K)


def test_snapshot_roundtrip_sharded(datasets, tmp_path):
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    sharded = ShardedIndex.build(
        space,
        lambda s: LAESA.build(s, select_pivots(s, 3, strategy="hfi", seed=0)),
        n_shards=3,
        seed=1,
    )
    queries = _sample_queries(dataset)
    radius = RADIUS["LA"]
    expected = sharded.range_query_many(queries, radius)

    path = tmp_path / "sharded.snap"
    save_index(sharded, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert counters.distance_computations == 0
    assert restored.range_query_many(queries, radius) == expected
    # restored sharded indexes come back serial: pools don't serialise
    assert restored.executor is None


def test_restored_per_shard_counters_not_double_counted(datasets, tmp_path):
    """Restoring a per-shard-counters ShardedIndex must keep the shards'
    counters private -- collapsing them onto the parent's would count every
    shard call twice (once direct, once via the merged delta)."""
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    index = ShardedIndex.build(
        space, _build_shard_laesa, n_shards=3, seed=2, per_shard_counters=True
    )
    queries = _sample_queries(dataset, n=3)
    before = space.counters.snapshot()
    expected = index.range_query_many(queries, RADIUS["LA"])
    original_cost = (space.counters.snapshot() - before).distance_computations

    path = tmp_path / "per-shard.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert restored.range_query_many(queries, RADIUS["LA"]) == expected
    assert counters.distance_computations == original_cost
    # the shards keep private accumulators distinct from the parent's
    assert all(
        shard.space.counters is not restored.space.counters
        for shard in restored.shards
    )


def test_restored_disk_index_still_counts_page_accesses(
    datasets, built_indexes, tmp_path
):
    """CPT's pager survives the trip: restored queries still report PA."""
    index = built_indexes("LA", "CPT")
    queries = _sample_queries(datasets["LA"])
    path = tmp_path / "cpt.snap"
    save_index(index, path)
    counters = CostCounters()
    restored = load_index(path, counters=counters)
    restored.range_query_many(queries, RADIUS["LA"])
    assert counters.page_reads > 0
    assert counters.distance_computations > 0


def test_snapshot_info_reads_header_only(datasets, built_indexes, tmp_path):
    index = built_indexes("Words", "LAESA")
    path = tmp_path / "laesa.snap"
    written = save_index(index, path)
    info = snapshot_info(path)
    assert info == written
    assert info.index_name == "LAESA"
    assert info.distance_name == "edit"
    assert info.payload_bytes > 0


def test_snapshot_rejects_bad_magic(tmp_path):
    path = tmp_path / "junk.snap"
    path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
    with pytest.raises(SnapshotError, match="bad magic"):
        load_index(path)


def test_snapshot_rejects_future_format(datasets, built_indexes, tmp_path):
    import json

    from repro.service import SNAPSHOT_MAGIC

    index = built_indexes("Words", "LAESA")
    path = tmp_path / "laesa.snap"
    save_index(index, path)
    blob = path.read_bytes()
    header_len = int.from_bytes(blob[8:12], "big")
    header = json.loads(blob[12 : 12 + header_len])
    header["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
    new_header = json.dumps(header, sort_keys=True).encode()
    path.write_bytes(
        SNAPSHOT_MAGIC
        + len(new_header).to_bytes(4, "big")
        + new_header
        + blob[12 + header_len :]
    )
    with pytest.raises(SnapshotError, match="format"):
        load_index(path)


def test_snapshot_rejects_truncated_payload(datasets, built_indexes, tmp_path):
    index = built_indexes("Words", "LAESA")
    path = tmp_path / "laesa.snap"
    save_index(index, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 100])
    with pytest.raises(SnapshotError, match="truncated"):
        load_index(path)


def test_v1_snapshot_still_loads(datasets, built_indexes, tmp_path):
    """Cross-version regression: snapshots written as v1 keep loading."""
    dataset = datasets["LA"]
    index = built_indexes("LA", "LAESA")
    queries = _sample_queries(dataset)
    expected = [index.range_query(q, RADIUS["LA"]) for q in queries]

    path = tmp_path / "laesa.v1.snap"
    info = save_index(index, path, format_version=1)
    assert info.format_version == 1
    assert info.n_regions == 0 and info.region_bytes == 0
    assert snapshot_info(path).format_version == 1

    counters = CostCounters()
    restored = load_index(path, counters=counters)
    assert counters.distance_computations == 0
    assert [restored.range_query(q, RADIUS["LA"]) for q in queries] == expected


def test_v2_snapshot_grows_memmap_regions(datasets, built_indexes, tmp_path):
    """Vector tables leave the pickle payload and become mapped regions."""
    index = built_indexes("LA", "LAESA")
    path = tmp_path / "laesa.v2.snap"
    v1_info = save_index(index, tmp_path / "laesa.v1.snap", format_version=1)
    v2_info = save_index(index, path)
    assert v2_info.format_version == SNAPSHOT_FORMAT_VERSION == 2
    assert v2_info.n_regions > 0
    assert v2_info.region_bytes > 0
    # the bytes moved, they didn't duplicate: the v2 pickle shrinks by
    # (roughly) what the regions now carry
    assert v2_info.payload_bytes + v2_info.region_bytes < v1_info.payload_bytes * 1.1


def test_v2_snapshot_rejects_truncated_region(datasets, built_indexes, tmp_path):
    index = built_indexes("LA", "LAESA")
    path = tmp_path / "laesa.snap"
    info = save_index(index, path)
    assert info.n_regions > 0
    blob = path.read_bytes()
    # cut inside the region block: the header survives, the data doesn't
    path.write_bytes(blob[: len(blob) - (info.region_bytes // 2)])
    with pytest.raises(SnapshotError, match="truncated"):
        load_index(path)


def test_v2_snapshot_rejects_corrupt_region_table(datasets, built_indexes, tmp_path):
    import json

    from repro.service import SNAPSHOT_MAGIC

    index = built_indexes("LA", "LAESA")
    path = tmp_path / "laesa.snap"
    save_index(index, path)
    blob = path.read_bytes()
    header_len = int.from_bytes(blob[8:12], "big")
    header = json.loads(blob[12 : 12 + header_len])
    assert header["regions"], "expected a region table in a v2 vector snapshot"

    def rewrite(mutate):
        bad = json.loads(json.dumps(header))
        mutate(bad)
        new_header = json.dumps(bad, sort_keys=True).encode()
        prefix = SNAPSHOT_MAGIC + len(new_header).to_bytes(4, "big") + new_header
        # regions start at the next 4 KiB boundary, so a same-ballpark
        # header length leaves every region offset valid
        assert len(prefix) <= 4096 and 12 + header_len <= 4096
        path.write_bytes(prefix + b"\x00" * (4096 - len(prefix)) + blob[4096:])

    def corrupt_nbytes(h):
        h["regions"][0]["nbytes"] += 8

    def corrupt_dtype(h):
        h["regions"][0]["dtype"] = "|O8"

    def corrupt_offset(h):
        h["regions"][0]["offset"] = h["regions_span"]

    for mutate in (corrupt_nbytes, corrupt_dtype, corrupt_offset):
        rewrite(mutate)
        with pytest.raises(SnapshotError):
            load_index(path)


# ---------------------------------------------------------------------------
# LRU result cache
# ---------------------------------------------------------------------------


def test_query_key_canonicalises_equal_vectors():
    a = np.array([1.0, 2.0, 3.0])
    assert query_key(a) == query_key(a.copy())
    assert query_key(a) != query_key(np.array([1.0, 2.0, 4.0]))
    assert query_key("word") == query_key("word")
    assert query_key((1, 2)) == query_key((1, 2))
    # dtype matters: float32 bytes differ from float64
    assert query_key(a) != query_key(a.astype(np.float32))


def test_cache_hit_miss_eviction_stats_fold_into_counters():
    counters = CostCounters()
    cache = QueryResultCache(capacity=2, counters=counters)
    k1 = cache.make_key("idx", "range", "alpha", 2.0)
    k2 = cache.make_key("idx", "range", "beta", 2.0)
    k3 = cache.make_key("idx", "range", "gamma", 2.0)

    assert cache.get(k1) is None  # miss
    cache.put(k1, [1, 2])
    assert cache.get(k1) == [1, 2]  # hit
    cache.put(k2, [3])
    cache.put(k3, [4])  # evicts k1 (LRU)
    assert cache.get(k1) is None  # miss after eviction
    assert cache.hits == 1 and cache.misses == 2 and cache.evictions == 1
    assert counters.cache_hits == 1
    assert counters.cache_misses == 2
    assert counters.cache_evictions == 1
    snap = counters.snapshot()
    assert snap.cache_hits == 1 and snap.cache_misses == 2


def test_cache_returns_copies():
    cache = QueryResultCache(capacity=4)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1, 2, 3])
    first = cache.get(key)
    first.append(99)
    assert cache.get(key) == [1, 2, 3]


def test_cache_capacity_zero_disables():
    cache = QueryResultCache(capacity=0)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1])
    assert cache.get(key) is None
    assert len(cache) == 0


def test_cache_byte_budget_evicts_by_bytes():
    """A byte budget evicts LRU entries even when the count budget has room."""
    counters = CostCounters()
    cache = QueryResultCache(capacity=100, counters=counters, capacity_bytes=2048)
    keys = [cache.make_key("idx", "range", f"q{i}", 1.0) for i in range(6)]
    big = list(range(100))  # ~= 256 overhead + 800 id bytes per entry
    for key in keys:
        cache.put(key, big)
    stats = cache.stats()
    assert stats["capacity_bytes"] == 2048
    assert 0 < stats["cache_bytes"] <= 2048
    assert len(cache) < 6, "byte budget never evicted"
    assert cache.evictions > 0
    # most-recent entries survive, oldest were evicted
    assert cache.get(keys[-1]) == big
    assert cache.get(keys[0]) is None


def test_cache_bytes_tracks_replacement_and_invalidation():
    cache = QueryResultCache(capacity=8, capacity_bytes=1 << 20)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, list(range(50)))
    first = cache.stats()["cache_bytes"]
    cache.put(key, list(range(10)))  # replacement must not double-count
    second = cache.stats()["cache_bytes"]
    assert 0 < second < first
    other = cache.make_key("other", "range", "q", 1.0)
    cache.put(other, [1, 2, 3])
    cache.invalidate("idx")
    assert cache.stats()["cache_bytes"] < second
    cache.invalidate()
    assert cache.stats()["cache_bytes"] == 0


def test_cache_capacity_bytes_zero_disables():
    cache = QueryResultCache(capacity=8, capacity_bytes=0)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1])
    assert cache.get(key) is None
    assert len(cache) == 0


def test_cache_ttl_expires_entries_as_misses():
    """An entry older than ttl_s is dropped on lookup: counted as a miss
    plus the dedicated ``expired`` stat, never returned."""
    counters = CostCounters()
    cache = QueryResultCache(capacity=8, counters=counters, ttl_s=0.05)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1, 2])
    assert cache.get(key) == [1, 2]  # fresh: a plain hit
    time.sleep(0.06)
    assert cache.get(key) is None  # expired -> miss
    assert cache.expired == 1
    assert cache.hits == 1 and cache.misses == 1
    assert counters.cache_misses == 1
    assert len(cache) == 0  # the expired entry was evicted, bytes released
    assert cache.stats()["cache_bytes"] == 0
    # the slot is reusable: a fresh put serves again
    cache.put(key, [3])
    assert cache.get(key) == [3]
    stats = cache.stats()
    assert stats["expired"] == 1
    assert stats["ttl_s"] == 0.05


def test_cache_ttl_zero_expires_immediately():
    cache = QueryResultCache(capacity=8, ttl_s=0)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1])
    assert cache.get(key) is None
    assert cache.expired == 1


def test_cache_ttl_none_never_expires():
    cache = QueryResultCache(capacity=8)
    key = cache.make_key("idx", "range", "q", 1.0)
    cache.put(key, [1])
    assert cache.get(key) == [1]
    assert cache.expired == 0
    assert cache.stats()["ttl_s"] is None


def test_cache_rejects_negative_ttl():
    with pytest.raises(ValueError, match="ttl_s"):
        QueryResultCache(capacity=8, ttl_s=-1.0)


def test_service_cache_ttl_reaches_stats_and_expires(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    q = datasets["Words"][0]
    radius = RADIUS["Words"]
    with QueryService(index, cache_ttl_s=0.05, use_dispatcher=False) as service:
        expected = service.range_query(q, radius)
        assert service.range_query(q, radius) == expected  # warm hit
        assert service.stats()["cache"]["hits"] == 1
        time.sleep(0.06)
        # the stale entry is recomputed, not served
        assert service.range_query(q, radius) == expected
        stats = service.stats()["cache"]
        assert stats["ttl_s"] == 0.05
        assert stats["expired"] == 1
        assert stats["misses"] == 2


def test_service_cache_bytes_budget_reaches_stats(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    with QueryService(index, cache_bytes=1 << 16, use_dispatcher=False) as service:
        service.range_query(datasets["Words"][0], RADIUS["Words"])
        stats = service.stats()["cache"]
    assert stats["capacity_bytes"] == 1 << 16
    assert stats["cache_bytes"] > 0


def test_cache_invalidate_per_index():
    cache = QueryResultCache(capacity=8)
    cache.put(cache.make_key("a", "range", "q", 1.0), [1])
    cache.put(cache.make_key("b", "range", "q", 1.0), [2])
    assert cache.invalidate("a") == 1
    assert cache.get(cache.make_key("b", "range", "q", 1.0)) == [2]
    assert cache.invalidate() == 1  # drops everything left
    assert len(cache) == 0


def test_cache_rejects_puts_older_than_invalidation():
    """An answer computed before a concurrent mutation must not be cached."""
    cache = QueryResultCache(capacity=8)
    key = cache.make_key("idx", "range", "q", 1.0)
    generation = cache.generation("idx")
    cache.invalidate("idx")  # the mutation lands while the answer computes
    cache.put(key, [1, 2], generation=generation)  # stale: dropped
    assert cache.get(key) is None
    fresh = cache.generation("idx")
    cache.put(key, [3], generation=fresh)
    assert cache.get(key) == [3]
    cache.invalidate()  # global invalidation bumps every index's epoch
    cache.put(key, [4], generation=fresh)
    assert cache.get(key) is None


def test_cache_is_safe_under_concurrent_mutation():
    """get/put/invalidate from many threads: no lost structure, no crashes."""
    cache = QueryResultCache(capacity=32, counters=CostCounters())
    stop = threading.Event()
    errors = []

    def hammer(worker_id):
        try:
            i = 0
            while not stop.is_set():
                key = cache.make_key("idx", "range", f"q{worker_id}-{i % 40}", 1.0)
                cache.put(key, [i])
                cache.get(key)
                if i % 17 == 0:
                    cache.invalidate("idx")
                i += 1
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    time.sleep(0.3)
    stop.set()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) <= 32


def test_radius_distinguishes_cache_entries(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    with QueryService(index, use_dispatcher=False) as service:
        q = datasets["Words"][0]
        small = service.range_query(q, 1.0)
        large = service.range_query(q, 4.0)
        assert small == index.range_query(q, 1.0)
        assert large == index.range_query(q, 4.0)
        assert set(small) <= set(large)
        assert service.cache.misses == 2  # distinct radii never collide


# ---------------------------------------------------------------------------
# micro-batching dispatcher
# ---------------------------------------------------------------------------


def _echo_executor(index_id, kind, param, queries):
    return [(index_id, kind, param, q) for q in queries]


def test_dispatcher_answers_in_submission_order():
    with MicroBatchDispatcher(_echo_executor, max_batch_size=4, max_wait_ms=5.0) as d:
        futures = [d.submit("", "range", f"q{i}", 2.0) for i in range(10)]
        results = [f.result(timeout=5) for f in futures]
    assert results == [("", "range", 2.0, f"q{i}") for i in range(10)]


def test_dispatcher_coalesces_concurrent_callers():
    calls = []

    def executor(index_id, kind, param, queries):
        calls.append(len(queries))
        time.sleep(0.002)  # give the pending queue time to fill
        return [None for _ in queries]

    with MicroBatchDispatcher(executor, max_batch_size=16, max_wait_ms=50.0) as d:
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(
                pool.map(lambda i: d.submit("", "range", i, 1.0).result(), range(64))
            )
        stats = d.stats
    assert stats.queries == 64
    # coalescing must actually happen: far fewer batches than queries
    assert stats.batches < 64
    assert stats.mean_batch_size > 1.0
    assert max(calls) <= 16  # max_batch_size respected


def test_dispatcher_separates_incompatible_groups():
    seen = []

    def executor(index_id, kind, param, queries):
        seen.append((index_id, kind, param, len(queries)))
        return [0 for _ in queries]

    with MicroBatchDispatcher(executor, max_batch_size=8, max_wait_ms=20.0) as d:
        futures = [d.submit("", "range", i, 1.0) for i in range(3)]
        futures += [d.submit("", "range", i, 2.0) for i in range(3)]
        futures += [d.submit("", "knn", i, 2.0) for i in range(3)]
        for f in futures:
            f.result(timeout=5)
    groups = {(index_id, kind, param) for index_id, kind, param, _ in seen}
    # one group per (index, kind, param): a radius-1 MRQ never batches with
    # a radius-2 MRQ or with a k=2 kNN
    assert groups == {("", "range", 1.0), ("", "range", 2.0), ("", "knn", 2.0)}


def test_dispatcher_propagates_executor_errors():
    def executor(index_id, kind, param, queries):
        raise ValueError("boom")

    with MicroBatchDispatcher(executor, max_batch_size=4, max_wait_ms=1.0) as d:
        future = d.submit("", "range", "q", 1.0)
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=5)


def test_dispatcher_close_drains_pending_and_rejects_new():
    d = MicroBatchDispatcher(_echo_executor, max_batch_size=64, max_wait_ms=10_000.0)
    futures = [d.submit("", "range", i, 1.0) for i in range(5)]
    d.close()  # max_wait is huge: only the close-drain can resolve these
    assert [f.result(timeout=5) for f in futures] == [
        ("", "range", 1.0, i) for i in range(5)
    ]
    with pytest.raises(RuntimeError, match="closed"):
        d.submit("", "range", "late", 1.0)
    d.close()  # idempotent


def test_dispatcher_rejects_bad_arguments():
    with pytest.raises(ValueError):
        MicroBatchDispatcher(_echo_executor, max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatchDispatcher(_echo_executor, max_wait_ms=-1.0)
    with MicroBatchDispatcher(_echo_executor) as d:
        with pytest.raises(ValueError, match="kind"):
            d.submit("", "nearest", "q", 1.0)


# ---------------------------------------------------------------------------
# QueryService facade
# ---------------------------------------------------------------------------


def test_service_answers_match_brute_force(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset, n=8)
    radius = RADIUS["Words"]
    scratch = MetricSpace(dataset)
    with QueryService(index, max_batch_size=8, max_wait_ms=1.0) as service:
        with ThreadPoolExecutor(max_workers=6) as pool:
            range_answers = list(
                pool.map(lambda q: service.range_query(q, radius), queries)
            )
            knn_answers = list(pool.map(lambda q: service.knn_query(q, K), queries))
    assert range_answers == [brute_force_range(scratch, q, radius) for q in queries]
    assert knn_answers == [brute_force_knn(scratch, q, K) for q in queries]


def test_service_warm_cache_skips_index_work(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset, n=6)
    radius = RADIUS["Words"]
    counters = CostCounters()
    with QueryService(index, counters=counters, use_dispatcher=False) as service:
        cold = [service.range_query(q, radius) for q in queries]
        after_cold = counters.snapshot()
        warm = [service.range_query(q, radius) for q in queries]
        delta = counters.snapshot() - after_cold
    assert warm == cold
    assert delta.distance_computations == 0  # pure cache hits
    assert delta.cache_hits == len(queries)


def test_service_batch_entry_points_are_cache_aware(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "MVPT")
    queries = _sample_queries(dataset, n=6)
    radius = RADIUS["Words"]
    with QueryService(index, use_dispatcher=False) as service:
        first = service.range_query_many(queries, radius)
        # mixed batch: 6 hits + 2 misses -> only 2 queries reach the index
        extra = _sample_queries(dataset, n=8, seed=18)[6:]
        mixed = queries + extra
        answers = service.range_query_many(mixed, radius)
    assert answers[: len(queries)] == first
    assert answers[len(queries) :] == index.range_query_many(extra, radius)
    assert service.cache.hits >= len(queries)


def test_service_deduplicates_identical_queries_in_flight(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    q = dataset[3]
    radius = RADIUS["Words"]
    counters = CostCounters()
    expected = index.range_query(q, radius)
    with QueryService(index, counters=counters, use_dispatcher=False) as service:
        answers = service.range_query_many([q, q, q, q], radius)
    assert answers == [expected] * 4
    # one evaluation: the l pivot distances + the survivor verifications,
    # not four times that
    single = CostCounters()
    with QueryService(
        index, counters=single, cache_size=0, use_dispatcher=False
    ) as fresh:
        fresh.range_query(q, radius)
    assert counters.distance_computations == single.distance_computations


def test_service_mutations_invalidate_cache(datasets, pivots):
    dataset = datasets["Words"]
    space = MetricSpace(dataset, CostCounters())
    index = LAESA.build(space, pivots["Words"])
    q = dataset[0]
    radius = RADIUS["Words"]
    with QueryService(index, use_dispatcher=False) as service:
        before = service.range_query(q, radius)
        victim = before[-1]
        service.delete(victim)
        after_delete = service.range_query(q, radius)
        assert victim not in after_delete
        service.insert(dataset[victim], object_id=victim)
        assert service.range_query(q, radius) == before


def test_service_from_snapshot_roundtrip(datasets, built_indexes, tmp_path):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset)
    radius = RADIUS["Words"]
    path = tmp_path / "svc.snap"
    with QueryService(index, use_dispatcher=False) as service:
        expected = service.range_query_many(queries, radius)
        service.save(path)
    with QueryService.from_snapshot(path, use_dispatcher=False) as restored:
        assert restored.counters.distance_computations == 0
        assert restored.range_query_many(queries, radius) == expected
        stats = restored.stats()
    assert stats["cache"]["misses"] == len(queries)
    assert stats["distance_computations"] > 0


def test_service_stats_shape(datasets, built_indexes):
    index = built_indexes("Words", "LAESA")
    with QueryService(index) as service:
        service.range_query(datasets["Words"][0], 2.0)
        stats = service.stats()
    assert stats["index"] == "LAESA"
    assert set(stats["cache"]) >= {"hits", "misses", "evictions", "hit_rate"}
    assert set(stats["dispatcher"]) >= {"queries", "batches", "mean_batch_size"}


def test_service_submit_futures(datasets, built_indexes):
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    q = dataset[5]
    radius = RADIUS["Words"]
    with QueryService(index, max_wait_ms=1.0) as service:
        first = service.submit_range(q, radius).result(timeout=5)
        # second submit is a cache hit: resolved future, no dispatcher trip
        batches_before = service.dispatcher.stats.batches
        second = service.submit_range(q, radius)
        assert second.done()
        assert second.result() == first
        assert service.dispatcher.stats.batches == batches_before
        knn = service.submit_knn(q, K).result(timeout=5)
    assert knn == index.knn_query(q, K)
    with QueryService(index, use_dispatcher=False) as plain:
        with pytest.raises(RuntimeError, match="use_dispatcher"):
            plain.submit_range(q, radius)


# ---------------------------------------------------------------------------
# satellite: per-shard counters under thread and process pools
# ---------------------------------------------------------------------------


def _build_shard_laesa(space):
    """Module-level so a ProcessPoolExecutor can pickle the factory."""
    return LAESA.build(space, select_pivots(space, 3, strategy="hfi", seed=0))


def _sharded_counts(datasets, executor, per_shard):
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    index = ShardedIndex.build(
        space,
        _build_shard_laesa,
        n_shards=3,
        seed=2,
        executor=executor,
        per_shard_counters=per_shard,
    )
    build_snap = space.counters.snapshot()
    queries = _sample_queries(dataset, n=4)
    answers = index.range_query_many(queries, RADIUS["LA"])
    answers_knn = index.knn_query_many(queries, K)
    single = [index.range_query(queries[0], RADIUS["LA"])]
    total = space.counters.snapshot()
    return {
        "build": build_snap.distance_computations,
        "queries": (total - build_snap).distance_computations,
        "answers": (answers, answers_knn, single),
    }


def test_counters_merge_adds_counts():
    a = CostCounters(distance_computations=3, page_reads=1, cache_hits=2)
    b = CostCounters(distance_computations=4, page_writes=5, cache_misses=6)
    a.merge(b)
    assert a.distance_computations == 7
    assert a.page_reads == 1 and a.page_writes == 5
    assert a.cache_hits == 2 and a.cache_misses == 6
    a.merge(b.snapshot())  # snapshots merge too (elapsed ignored)
    assert a.distance_computations == 11


def test_sharded_counters_equal_across_executors(datasets):
    serial = _sharded_counts(datasets, executor=None, per_shard=False)
    per_shard_serial = _sharded_counts(datasets, executor=None, per_shard=True)
    with ThreadPoolExecutor(max_workers=3) as pool:
        threaded = _sharded_counts(datasets, executor=pool, per_shard=True)
    with ProcessPoolExecutor(max_workers=2) as pool:
        processed = _sharded_counts(datasets, executor=pool, per_shard=True)
    assert (
        serial["answers"]
        == per_shard_serial["answers"]
        == threaded["answers"]
        == processed["answers"]
    )
    # the satellite contract: counts are exact in every execution mode --
    # including the process pool, where shared counters would read zero
    assert (
        serial["build"]
        == per_shard_serial["build"]
        == threaded["build"]
        == processed["build"]
    )
    assert (
        serial["queries"]
        == per_shard_serial["queries"]
        == threaded["queries"]
        == processed["queries"]
    )


def test_process_pool_with_shared_counters_loses_counts(datasets):
    """Documents *why* per_shard_counters exists: shared counters cannot
    cross a process boundary, so query work appears free."""
    dataset = datasets["LA"]
    space = MetricSpace(dataset, CostCounters())
    index = ShardedIndex.build(
        space, _build_shard_laesa, n_shards=3, seed=2, per_shard_counters=False
    )
    queries = _sample_queries(dataset, n=3)
    expected = index.range_query_many(queries, RADIUS["LA"])
    with ProcessPoolExecutor(max_workers=2) as pool:
        index.executor = pool
        before = space.counters.snapshot()
        answers = index.range_query_many(queries, RADIUS["LA"])
        delta = space.counters.snapshot() - before
        index.executor = None
    assert answers == expected  # results survive the boundary
    assert delta.distance_computations == 0  # ...but the counts do not


# ---------------------------------------------------------------------------
# satellite: AESA insert signature
# ---------------------------------------------------------------------------


def test_aesa_insert_signature_uniform(datasets):
    import inspect

    from repro.core.index import MetricIndex

    assert list(inspect.signature(AESA.insert).parameters) == list(
        inspect.signature(MetricIndex.insert).parameters
    )
    index = AESA.build(MetricSpace(datasets["Words"].subset(range(20))))
    with pytest.raises(UnsupportedOperation):
        index.insert("newword")
    with pytest.raises(UnsupportedOperation):
        index.insert("newword", object_id=3)


# ---------------------------------------------------------------------------
# satellite: partial cache invalidation on insert/delete
# ---------------------------------------------------------------------------


class TestPartialInvalidation:
    def _entry(self, cache, index_id, kind, query_obj, param, result):
        key = cache.make_key(index_id, kind, query_obj, param)
        cache.put(key, result, query_obj=query_obj)
        return key

    def test_insert_keeps_out_of_ball_range_entries(self):
        cache = QueryResultCache(capacity=8)
        distance = lambda a, b: abs(a - b)  # noqa: E731 - 1-d toy metric
        near = self._entry(cache, "idx", "range", 10.0, 2.0, [1])
        far = self._entry(cache, "idx", "range", 100.0, 2.0, [7])
        dropped = cache.invalidate_affected("idx", obj=11.0, distance=distance)
        assert dropped == 1  # only the entry whose ball contains 11.0
        assert cache.get(near) is None
        assert cache.get(far) == [7]

    def test_insert_uses_knn_kth_distance_ball(self):
        from repro.core.queries import Neighbor

        cache = QueryResultCache(capacity=8)
        distance = lambda a, b: abs(a - b)  # noqa: E731
        answer = [Neighbor(1.0, 3), Neighbor(4.0, 8)]
        key = self._entry(cache, "idx", "knn", 10.0, 2, list(answer))
        # d(q, 20) = 10 > kth distance 4: provably outside, entry survives
        assert cache.invalidate_affected("idx", obj=20.0, distance=distance) == 0
        assert cache.get(key) == answer
        # d(q, 13) = 3 <= 4: could enter the top-k, entry dies
        assert cache.invalidate_affected("idx", obj=13.0, distance=distance) == 1
        assert cache.get(key) is None

    def test_insert_drops_short_knn_answers(self):
        from repro.core.queries import Neighbor

        cache = QueryResultCache(capacity=8)
        distance = lambda a, b: abs(a - b)  # noqa: E731
        key = self._entry(cache, "idx", "knn", 10.0, 5, [Neighbor(1.0, 3)])
        # fewer than k answers known: any insert grows the answer
        assert cache.invalidate_affected("idx", obj=999.0, distance=distance) == 1
        assert cache.get(key) is None

    def test_delete_drops_only_containing_entries(self):
        cache = QueryResultCache(capacity=8)
        with_victim = self._entry(cache, "idx", "range", "qa", 2.0, [1, 42])
        without = self._entry(cache, "idx", "range", "qb", 2.0, [7])
        assert cache.invalidate_affected("idx", object_id=42) == 1
        assert cache.get(with_victim) is None
        assert cache.get(without) == [7]

    def test_missing_bound_falls_back_to_full_wipe(self):
        cache = QueryResultCache(capacity=8)
        self._entry(cache, "idx", "range", "qa", 2.0, [1])
        self._entry(cache, "idx", "range", "qb", 2.0, [2])
        # neither an insert bound nor a delete id: whole index wipes
        assert cache.invalidate_affected("idx") == 2
        assert len(cache) == 0

    def test_entry_without_query_object_drops_conservatively(self):
        cache = QueryResultCache(capacity=8)
        key = cache.make_key("idx", "range", 10.0, 2.0)
        cache.put(key, [1])  # stored without query_obj
        distance = lambda a, b: abs(a - b)  # noqa: E731
        assert cache.invalidate_affected("idx", obj=999.0, distance=distance) == 1
        assert cache.get(key) is None

    def test_cached_query_object_immune_to_caller_mutation(self):
        """The ball test must see the value the answer was computed for,
        even when the caller reuses its query buffer afterwards."""
        cache = QueryResultCache(capacity=8)
        q = np.array([1.0, 2.0])
        key = cache.make_key("idx", "range", q, 2.0)
        cache.put(key, [1], query_obj=q)
        q[:] = 1e9  # caller recycles the array in place
        distance = lambda a, b: float(np.abs(a - b).max())  # noqa: E731
        # the mutated object is right next to the *recycled* buffer but far
        # from the original query: the entry is provably unaffected
        dropped = cache.invalidate_affected(
            "idx", obj=np.array([1e9, 1e9]), distance=distance
        )
        assert dropped == 0
        assert cache.get(key) == [1]

    def test_partial_invalidation_bumps_generation(self):
        cache = QueryResultCache(capacity=8)
        distance = lambda a, b: abs(a - b)  # noqa: E731
        generation = cache.generation("idx")
        cache.invalidate_affected("idx", obj=0.0, distance=distance)
        assert cache.generation("idx") != generation
        # an in-flight answer computed before the mutation is dropped
        key = cache.make_key("idx", "range", 50.0, 2.0)
        cache.put(key, [9], generation=generation, query_obj=50.0)
        assert cache.get(key) is None

    def test_other_index_entries_untouched(self):
        cache = QueryResultCache(capacity=8)
        distance = lambda a, b: abs(a - b)  # noqa: E731
        mine = self._entry(cache, "a", "range", 10.0, 2.0, [1])
        other = self._entry(cache, "b", "range", 10.0, 2.0, [2])
        cache.invalidate_affected("a", obj=10.0, distance=distance)
        assert cache.get(mine) is None
        assert cache.get(other) == [2]

    def test_survivors_exclude_concurrently_evicted_entries(self):
        """The ball checks run outside the lock; entries evicted meanwhile
        were not kept by the proof and must not be credited as survivors.
        (Reproduces the defect: the old accounting added
        len(candidates) - len(doomed) regardless of what still existed.)
        The side-effecting metric stands in for a concurrent writer --
        it runs at exactly the point where real concurrent traffic can."""
        cache = QueryResultCache(capacity=2)
        for query in (100.0, 200.0):  # both far from the mutation: provable
            key = cache.make_key("idx", "range", query, 2.0)
            cache.put(key, [int(query)], query_obj=query)

        def evicting_distance(a, b):
            # each check pushes two fresh entries: capacity 2 evicts both
            # candidates while invalidate_affected is still deciding
            for i in (1, 2):
                other = cache.make_key("idx", "range", f"intruder-{a}-{i}", 9.0)
                cache.put(other, [0], query_obj=f"intruder-{a}-{i}")
            return abs(a - b)

        dropped = cache.invalidate_affected(
            "idx", obj=0.0, distance=evicting_distance
        )
        assert dropped == 0  # nothing affected, nothing left to drop
        assert cache.partial_survivors == 0  # ...and nothing survived either

    def test_survivors_exclude_concurrently_replaced_entries(self):
        """A candidate replaced by a fresh post-mutation answer is present
        under the same key but was not kept by the invalidation proof."""
        cache = QueryResultCache(capacity=8)
        key = cache.make_key("idx", "range", 100.0, 2.0)
        cache.put(key, [1], query_obj=100.0)
        kept_key = cache.make_key("idx", "range", 500.0, 2.0)
        cache.put(kept_key, [5], query_obj=500.0)

        def replacing_distance(a, b):
            if a == 100.0:  # replace this candidate mid-check
                cache.put(key, [99], query_obj=100.0)
            return abs(a - b)

        cache.invalidate_affected("idx", obj=0.0, distance=replacing_distance)
        # exactly one genuine survivor: the untouched far entry
        assert cache.partial_survivors == 1
        assert cache.get(key) == [99]  # the replacement itself is untouched
        assert cache.get(kept_key) == [5]

    def test_service_mutations_preserve_unaffected_entries(self, datasets, pivots):
        """End to end: a far-away query's cached answer survives mutations."""
        dataset = datasets["Words"]
        space = MetricSpace(dataset, CostCounters())
        index = LAESA.build(space, pivots["Words"])
        q = dataset[0]
        radius = 1.0  # tight ball: most mutations are provably outside it
        with QueryService(index, use_dispatcher=False) as service:
            before = service.range_query(q, radius)
            far_victim = max(
                range(len(dataset)),
                key=lambda i: dataset.distance(q, dataset[i]),
            )
            hits_before = service.cache.hits
            service.delete(far_victim)
            assert service.range_query(q, radius) == before
            assert service.cache.hits == hits_before + 1  # served from cache
            service.insert(dataset[far_victim], object_id=far_victim)
            assert service.range_query(q, radius) == before
            assert service.cache.hits == hits_before + 2
            assert service.cache.partial_survivors >= 2


# ---------------------------------------------------------------------------
# satellite: dispatcher stats are read/written under one lock
# ---------------------------------------------------------------------------


def test_dispatcher_stats_never_torn_under_concurrent_reads():
    """record() increments queries and batches as one atomic step: a reader
    must never observe a snapshot where one moved and the other did not.
    (The old code updated them without a lock; on GIL builds the tear
    window is real but needs unlucky preemption -- this pins the invariant
    so free-threaded builds and future edits cannot regress it.)"""
    import sys

    from repro.service import DispatcherStats

    stats = DispatcherStats()
    stop = threading.Event()

    def worker():
        while not stop.is_set():
            stats.record(4)  # a constant batch size keeps the invariant exact

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    thread = threading.Thread(target=worker)
    thread.start()
    try:
        for _ in range(4000):
            snap = stats.as_dict()
            assert snap["queries"] == 4 * snap["batches"], snap
            assert snap["mean_batch_size"] in (0.0, 4.0), snap
    finally:
        stop.set()
        thread.join()
        sys.setswitchinterval(old_interval)


def test_dispatcher_stats_updates_and_reads_share_one_lock():
    """The synchronization contract itself: while a reader holds the stats
    lock, record(), record_wait(), and as_dict() must all block -- updates
    and reads are serialized, never interleaved."""
    from repro.service import DispatcherStats

    stats = DispatcherStats()
    stats.record(2)
    results = []
    with stats._lock:
        blocked = threading.Thread(target=lambda: (stats.record(3), results.append(stats.as_dict())))
        blocked.start()
        blocked.join(timeout=0.2)
        assert blocked.is_alive()  # record() is waiting on the held lock
        assert not results
    blocked.join(timeout=5)
    assert not blocked.is_alive()
    assert results[0]["queries"] == 5 and results[0]["batches"] == 2


def test_service_stats_consistent_under_load(datasets, built_indexes):
    """End to end: QueryService.stats() while traffic flows must report a
    dispatcher snapshot whose totals are mutually consistent."""
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(datasets["Words"], n=8)
    radius = RADIUS["Words"]
    with QueryService(index, cache_size=0, max_wait_ms=1.0) as service:
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = service.stats()["dispatcher"]
                if snap["queries"] < snap["batches"]:
                    torn.append(snap)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(
                    pool.map(
                        lambda i: service.range_query(queries[i % 8], radius),
                        range(64),
                    )
                )
        finally:
            stop.set()
            thread.join()
    assert not torn, torn[:3]


# ---------------------------------------------------------------------------
# satellite: a disabled cache is truly bypassed
# ---------------------------------------------------------------------------


def test_zero_capacity_cache_records_no_misses(datasets, built_indexes):
    """cache_size=0 is documented as 'disables caching entirely' -- so no
    lookup may run and no cache_miss may be counted for traffic that can
    never hit.  (Reproduces the defect: the old code counted one miss per
    query and hashed every query vector.)"""
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    queries = _sample_queries(dataset, n=4)
    radius = RADIUS["Words"]
    counters = CostCounters()
    with QueryService(
        index, counters=counters, cache_size=0, use_dispatcher=False
    ) as service:
        single = [service.range_query(q, radius) for q in queries]
        batched = service.range_query_many(queries, radius)
    assert batched == single == [index.range_query(q, radius) for q in queries]
    assert counters.cache_misses == 0
    assert counters.cache_hits == 0
    assert service.cache.misses == 0


def test_zero_capacity_cache_never_consulted(datasets, built_indexes):
    """No get() call at all with capacity 0 -- the key construction and the
    lookup are short-circuited, not just the counter."""
    index = built_indexes("Words", "LAESA")
    q = datasets["Words"][0]
    with QueryService(index, cache_size=0, max_wait_ms=1.0) as service:

        def forbidden(key):  # pragma: no cover - only on regression
            raise AssertionError("cache.get() reached despite capacity 0")

        service.cache.get = forbidden
        assert service.range_query(q, RADIUS["Words"]) == index.range_query(
            q, RADIUS["Words"]
        )
        future = service.submit_range(q, RADIUS["Words"])
        assert future.result(timeout=5) == index.range_query(q, RADIUS["Words"])


def test_zero_capacity_service_still_deduplicates_in_flight(
    datasets, built_indexes
):
    """In-batch dedup is independent of caching and must survive the
    bypass: four identical queries still cost one evaluation."""
    dataset = datasets["Words"]
    index = built_indexes("Words", "LAESA")
    q = dataset[3]
    radius = RADIUS["Words"]
    expected = index.range_query(q, radius)
    counters = CostCounters()
    with QueryService(
        index, counters=counters, cache_size=0, use_dispatcher=False
    ) as service:
        answers = service.range_query_many([q, q, q, q], radius)
        batched_cost = counters.distance_computations
    assert answers == [expected] * 4
    single = CostCounters()
    with QueryService(
        index, counters=single, cache_size=0, use_dispatcher=False
    ) as fresh:
        fresh.range_query(q, radius)
    assert batched_cost == single.distance_computations


# ---------------------------------------------------------------------------
# satellite: adaptive dispatcher wait
# ---------------------------------------------------------------------------


class TestAdaptiveDispatcherWait:
    def test_wait_tracks_arrival_rate_and_clamps(self):
        key = ("", "range", 1.0)
        with MicroBatchDispatcher(
            _echo_executor, max_batch_size=8, max_wait_ms=50.0
        ) as d:
            assert d._wait_of(key) == pytest.approx(0.05)  # nothing observed yet
            futures = [d.submit("", "range", i, 1.0) for i in range(20)]
            for f in futures:
                f.result(timeout=5)
            # back-to-back submissions: the group's EWMA interval is tiny,
            # so the derived wait collapses far below the configured bound
            _, ewma, wait = d._rates[key]
            assert ewma is not None
            assert wait <= 0.05
            assert wait == pytest.approx(min(0.05, ewma * 7))
            stats = d.stats.as_dict()
            assert stats["current_wait_ms"] == pytest.approx(wait * 1000.0, abs=1e-4)
            assert stats["ewma_arrival_ms"] is not None

    def test_sparse_traffic_collapses_wait_to_zero(self):
        key = ("", "range", 1.0)
        with MicroBatchDispatcher(
            _echo_executor, max_batch_size=8, max_wait_ms=5.0
        ) as d:
            with d._wake:
                # arrivals 1s apart dwarf the 5ms bound: no companion query
                # is expected inside it, so waiting would stall for nothing
                d._observe_arrival(key, 100.0)
                d._observe_arrival(key, 101.0)
            assert d._wait_of(key) == 0.0
            # a single sparse submission still resolves promptly
            assert d.submit("", "range", "lonely", 1.0).result(timeout=5) == (
                "",
                "range",
                1.0,
                "lonely",
            )

    def test_rates_are_per_group_not_global(self):
        """A dense mix of distinct parameters must stay sparse per group:
        batches only form inside one (index, kind, param) group, so a globally
        busy stream must not pin every group's wait at the full bound."""
        with MicroBatchDispatcher(
            _echo_executor, max_batch_size=8, max_wait_ms=5.0
        ) as d:
            with d._wake:
                # 40 globally dense arrivals (0.8ms apart), but each radius
                # only every 8ms -- sparse within its own group
                for step in range(40):
                    key = ("", "range", float(step % 10))
                    d._observe_arrival(key, 200.0 + step * 0.0008)
            for radius in range(10):
                assert d._wait_of(("", "range", float(radius))) == 0.0

    def test_adaptive_wait_off_keeps_configured_bound(self):
        key = ("", "range", 1.0)
        with MicroBatchDispatcher(
            _echo_executor, max_batch_size=4, max_wait_ms=25.0, adaptive_wait=False
        ) as d:
            futures = [d.submit("", "range", i, 1.0) for i in range(12)]
            for f in futures:
                f.result(timeout=5)
            assert d._wait_of(key) == pytest.approx(0.025)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            MicroBatchDispatcher(_echo_executor, ewma_alpha=0.0)

    def test_answers_stay_exact_under_adaptive_wait(self):
        with MicroBatchDispatcher(_echo_executor, max_batch_size=4) as d:
            futures = [d.submit("", "range", f"q{i}", 2.0) for i in range(30)]
            results = [f.result(timeout=5) for f in futures]
        assert results == [("", "range", 2.0, f"q{i}") for i in range(30)]
