"""Catalog -> planner -> executor: the multi-index serving refactor.

Covers the four load-bearing claims of the routed serving stack:

* the dispatcher's batch groups are index-aware -- two hosted indexes
  never coalesce, even at identical (kind, param);
* the windowed least-squares cost model learns parameter dependence and
  falls back to window means below its fit threshold;
* the catalog keeps members answer-equivalent (registration guards,
  fan-out mutations, whole-catalog snapshots and hot reloads);
* routed answers are bit-for-bit equal to every member's own answers and
  to brute force -- across Euclidean, Hamming, and quadratic-form
  metrics, through mutations and reloads -- and the planner's
  observability surface (explain, stats, metrics, span meta, HTTP)
  reports what routing actually did.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    CostCounters,
    Dataset,
    HammingDistance,
    MetricSpace,
    QuadraticFormDistance,
    brute_force_knn,
    brute_force_range,
    brute_force_range_many,
    make_la,
    make_words,
    select_pivots,
)
from repro.bench.runner import build_index
from repro.obs import MetricsRegistry, tracing
from repro.service import (
    CatalogError,
    CostModel,
    HttpQueryServer,
    IndexCatalog,
    MicroBatchDispatcher,
    QueryPlanner,
    QueryService,
    ServiceClient,
    ServiceClientError,
    is_catalog_manifest,
    load_catalog_manifest,
    save_index,
)
from repro.service.costmodel import MIN_FIT_OBSERVATIONS

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _build_catalog(dataset, names=("LAESA", "VPT"), n_pivots=4):
    """Each member on its own MetricSpace (the catalog's requirement)."""
    pivots = select_pivots(MetricSpace(dataset), n_pivots, strategy="hfi", seed=3)
    catalog = IndexCatalog()
    for name in names:
        space = MetricSpace(dataset, CostCounters())
        catalog.register(build_index(name, space, pivots, seed=5))
    return catalog


def _hamming_dataset(n=160, dim=32, seed=9):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(n, dim)).astype(np.float64)
    return Dataset(bits, HammingDistance(), name="bits")


def _quadratic_form_dataset(n=160, dim=8, seed=9):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(dim, dim))
    matrix = m @ m.T + dim * np.eye(dim)
    return Dataset(
        rng.normal(size=(n, dim)), QuadraticFormDistance(matrix), name="qf"
    )


def _moderate_radius(dataset, query_obj, n_results=12):
    """A radius capturing ~n_results objects (raw metric, uncounted)."""
    dists = sorted(dataset.distance(query_obj, dataset[j]) for j in range(len(dataset)))
    return float(dists[n_results])


# ---------------------------------------------------------------------------
# satellite: index-aware dispatcher groups
# ---------------------------------------------------------------------------


def test_dispatcher_never_coalesces_across_hosted_indexes():
    """Two hosted indexes at the same (kind, param) must batch separately:
    a batch is executed by exactly one member, so mixing would hand one
    member's queries to the other."""
    seen = []

    def executor(index_id, kind, param, queries):
        seen.append((index_id, kind, param, len(queries)))
        return [index_id for _ in queries]

    with MicroBatchDispatcher(executor, max_batch_size=8, max_wait_ms=50.0) as d:
        futures = [d.submit("laesa", "range", f"q{i}", 3.0) for i in range(3)]
        futures += [d.submit("mvpt", "range", f"q{i}", 3.0) for i in range(3)]
        answers = [f.result(timeout=5) for f in futures]
    assert answers == ["laesa"] * 3 + ["mvpt"] * 3
    groups = {(index_id, kind, param) for index_id, kind, param, _ in seen}
    assert groups == {("laesa", "range", 3.0), ("mvpt", "range", 3.0)}
    # and every executed batch was homogeneous: 3 queries per index total
    per_index = {"laesa": 0, "mvpt": 0}
    for index_id, _, _, n in seen:
        per_index[index_id] += n
    assert per_index == {"laesa": 3, "mvpt": 3}


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_unknown_key_predicts_none(self):
        model = CostModel()
        assert model.predict("a", "range", 1.0) is None
        assert model.cost("a", "range", 1.0) is None
        assert model.measured_means("a", "range") is None
        assert model.n_observations("a", "range") == 0

    def test_mean_fallback_below_fit_threshold(self):
        model = CostModel()
        for _ in range(MIN_FIT_OBSERVATIONS - 1):
            model.record("a", "range", 2.0, 1, 100, 10.0, 1.0, 0.5)
        predicted = model.predict("a", "range", 99.0)
        # feature-independent below the threshold: the window mean
        assert predicted["compdists"] == pytest.approx(10.0)
        assert predicted["page_reads"] == pytest.approx(1.0)
        assert predicted["wall_ms"] == pytest.approx(0.5)

    def test_fit_tracks_parameter_dependence(self):
        model = CostModel(refit_every=1)
        for r in range(1, 9):
            model.record("a", "range", float(r), 1, 100, 3.0 * r, float(r), 0.1 * r)
        p_small = model.predict("a", "range", 2.0, 1, 100)
        p_large = model.predict("a", "range", 8.0, 1, 100)
        assert p_large["compdists"] > p_small["compdists"]
        assert p_small["compdists"] == pytest.approx(6.0, rel=0.05)
        assert p_large["wall_ms"] == pytest.approx(0.8, rel=0.05)

    def test_window_evicts_stale_observations(self):
        model = CostModel(window=4, refit_every=1)
        for _ in range(10):
            model.record("a", "range", 1.0, 1, 10, 100.0, 0.0, 1.0)
        for _ in range(4):
            model.record("a", "range", 1.0, 1, 10, 2.0, 0.0, 1.0)
        assert model.n_observations("a", "range") == 4
        predicted = model.predict("a", "range", 1.0, 1, 10)
        assert predicted["compdists"] == pytest.approx(2.0)

    def test_totals_are_stored_per_query(self):
        model = CostModel()
        model.record("a", "knn", 5.0, 10, 50, 100.0, 20.0, 40.0)
        means = model.measured_means("a", "knn")
        assert means["compdists"] == pytest.approx(10.0)
        assert means["page_reads"] == pytest.approx(2.0)
        assert means["wall_ms"] == pytest.approx(4.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="window"):
            CostModel(window=0)
        with pytest.raises(ValueError, match="refit_every"):
            CostModel(refit_every=0)


# ---------------------------------------------------------------------------
# catalog membership, fan-out, snapshots
# ---------------------------------------------------------------------------


class TestIndexCatalog:
    def test_register_defaults_and_duplicates(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        assert catalog.ids() == ["LAESA", "VPT"]
        assert len(catalog) == 2
        assert "LAESA" in catalog and "nope" not in catalog
        assert catalog.primary.index_id == "LAESA"
        with pytest.raises(CatalogError, match="already has a member"):
            catalog.register(catalog.get("LAESA"), index_id="LAESA")

    def test_rejects_shared_metric_space(self):
        dataset = make_words(120, seed=13)
        pivots = select_pivots(MetricSpace(dataset), 4, strategy="hfi", seed=3)
        space = MetricSpace(dataset, CostCounters())
        catalog = IndexCatalog()
        catalog.register(build_index("LAESA", space, pivots, seed=5))
        with pytest.raises(CatalogError, match="shares a MetricSpace"):
            catalog.register(build_index("VPT", space, pivots, seed=5), "VPT")

    def test_rejects_mismatched_datasets(self):
        words = make_words(120, seed=13)
        other = make_la(120, seed=13)
        catalog = _build_catalog(words, names=("LAESA",))
        pivots = select_pivots(MetricSpace(other), 4, strategy="hfi", seed=3)
        stray = build_index("VPT", MetricSpace(other, CostCounters()), pivots, seed=5)
        with pytest.raises(CatalogError, match="different dataset"):
            catalog.register(stray, index_id="VPT")

    def test_remove_guards_last_member(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        catalog.remove("VPT")
        assert catalog.ids() == ["LAESA"]
        with pytest.raises(CatalogError, match="last member"):
            catalog.remove("LAESA")
        with pytest.raises(CatalogError, match="no member"):
            catalog.remove("VPT")
        with pytest.raises(CatalogError, match="no member"):
            catalog.member("VPT")

    def test_fanout_insert_and_delete_keep_members_equal(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        new_id = catalog.insert("zzbrandnew")
        for m in catalog.members():
            assert new_id in m.index.range_query("zzbrandnew", 0.0)
        catalog.delete(new_id)
        for m in catalog.members():
            assert m.index.range_query("zzbrandnew", 0.0) == []

    def test_save_load_roundtrip(self, tmp_path):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        queries = [dataset[i] for i in (0, 7, 23)]
        expected = [catalog.get("LAESA").range_query(q, 4.0) for q in queries]
        manifest = catalog.save(tmp_path / "cat")
        assert manifest.name == "cat.catalog.json"
        assert is_catalog_manifest(manifest)
        assert not is_catalog_manifest(tmp_path / "cat.member00.snap")
        loaded = IndexCatalog.load(manifest)
        assert loaded.ids() == catalog.ids()
        for m in loaded.members():
            # restore must cost zero distance computations
            assert m.counters.distance_computations == 0
        for m in loaded.members():
            assert [m.index.range_query(q, 4.0) for q in queries] == expected

    def test_manifest_validation(self, tmp_path):
        bad = tmp_path / "bad.catalog.json"
        bad.write_text("{not json")
        assert not is_catalog_manifest(bad)
        with pytest.raises(CatalogError, match="cannot read"):
            load_catalog_manifest(bad)
        bad.write_text('{"kind": "something-else"}')
        assert not is_catalog_manifest(bad)
        with pytest.raises(CatalogError, match="not a repro catalog"):
            load_catalog_manifest(bad)
        bad.write_text('{"kind": "repro-catalog", "members": []}')
        with pytest.raises(CatalogError, match="names no catalog members"):
            load_catalog_manifest(bad)
        bad.write_text(
            '{"kind": "repro-catalog", "members": '
            '[{"id": "a", "snapshot": "missing.snap"}]}'
        )
        with pytest.raises(CatalogError, match="missing member snapshot"):
            load_catalog_manifest(bad)


# ---------------------------------------------------------------------------
# planner: routing, calibration, explain
# ---------------------------------------------------------------------------


class TestQueryPlanner:
    def test_epsilon_validation(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset, names=("LAESA",))
        with pytest.raises(ValueError, match="epsilon"):
            QueryPlanner(catalog, epsilon=1.5)

    def test_single_member_fast_path(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset, names=("LAESA",))
        planner = QueryPlanner(catalog, epsilon=0.0)
        assert planner.route("range", 3.0) == "LAESA"

    def test_forced_exploration_covers_unmodeled_members(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        planner = QueryPlanner(catalog, epsilon=0.0)
        # no observations yet: round-robin over the unmodeled set
        assert {planner.route("range", 3.0) for _ in range(2)} == set(catalog.ids())

    def test_calibration_fits_models_and_explains(self):
        dataset = make_words(160, seed=13)
        catalog = _build_catalog(dataset)
        planner = QueryPlanner(catalog, epsilon=0.0)
        recorded = planner.calibrate(radii=[2.0, 5.0], ks=(5,), n_queries=6)
        # 2 members x 3 tasks x 3 batch sizes
        assert recorded == 18
        rows = planner.explain("range", 3.0)
        assert [row["index"] for row in rows] == catalog.ids()
        assert sum(row["chosen"] for row in rows) == 1
        for row in rows:
            assert row["observations"] > 0
            assert row["predicted"] is not None and row["measured"] is not None
            for key in ("compdists", "page_reads", "wall_ms"):
                assert row["predicted"][key] >= 0.0
        chosen = next(row["index"] for row in rows if row["chosen"])
        assert planner.route("range", 3.0) == chosen
        stats = planner.stats()
        assert stats["members"] == catalog.ids()
        assert stats["observations"] == 18
        assert stats["routes"] == {chosen: 1}
        assert 0.0 <= stats["mispredict_ratio"] <= 1.0

    def test_route_stamps_span_meta(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        planner = QueryPlanner(catalog, epsilon=0.0)
        planner.calibrate(radii=[3.0], n_queries=4)
        with tracing.start_trace("request") as root:
            choice = planner.route("range", 3.0)
        assert root.meta["planner"]["index"] == choice
        assert root.meta["planner"]["predicted_ms_per_query"] >= 0.0

    def test_metrics_and_mispredict_gauge(self):
        dataset = make_words(120, seed=13)
        catalog = _build_catalog(dataset)
        metrics = MetricsRegistry()
        planner = QueryPlanner(catalog, epsilon=0.0, metrics=metrics)
        planner.calibrate(radii=[3.0], n_queries=4)
        choice = planner.route("range", 3.0)
        rendered = metrics.render()
        assert f'repro_planner_route_total{{index="{choice}"}} 1' in rendered
        assert "repro_planner_mispredict_ratio" in rendered
        assert f'repro_planner_routed_batch_ms_count{{index="{choice}"}}' in rendered
        assert planner.mispredict_ratio() < 1.0
        # an absurd wall time scores as a mispredict against the fitted model
        cardinality = len(catalog.primary.index.space)
        planner.observe(choice, "range", 3.0, 1, cardinality, 50.0, 0.0, 1e6)
        assert planner.mispredict_ratio() > 0.0


# ---------------------------------------------------------------------------
# routed service parity: routed == every member == brute force
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "maker",
    [
        lambda: make_la(160, seed=9),
        _hamming_dataset,
        _quadratic_form_dataset,
    ],
    ids=["euclidean", "hamming", "quadratic-form"],
)
def test_routed_answers_match_members_and_brute_force(maker):
    dataset = maker()
    catalog = _build_catalog(dataset)
    ref_space = MetricSpace(dataset, CostCounters())
    queries = [dataset[i] for i in (0, 7, 23, 41)]
    radius = _moderate_radius(dataset, queries[0])
    with QueryService(
        catalog=catalog, planner_epsilon=0.5, planner_seed=3, use_dispatcher=False
    ) as service:
        service.planner.calibrate(radii=[radius], n_queries=4)
        for q in queries:
            routed = service.range_query(q, radius)
            assert routed == brute_force_range(ref_space, q, radius)
            for m in catalog.members():
                assert m.index.range_query(q, radius) == routed
            neighbors = service.knn_query(q, 5)
            assert neighbors == brute_force_knn(ref_space, q, 5)
            for m in catalog.members():
                assert m.index.knn_query(q, 5) == neighbors
        # batched path routes whole miss partitions; answers stay exact
        batch = service.range_query_many(queries, radius)
        assert batch == brute_force_range_many(ref_space, queries, radius)
        # pinning bypasses the planner but never changes the answer
        for member_id in catalog.ids():
            assert service.range_query_many(
                queries, radius, index=member_id
            ) == batch


def test_routed_dispatcher_path_stays_exact():
    """Concurrent single queries through the live dispatcher, planner on."""
    dataset = make_words(160, seed=13)
    catalog = _build_catalog(dataset)
    ref_space = MetricSpace(dataset, CostCounters())
    queries = [dataset[i] for i in (0, 5, 11, 17, 29, 41, 53, 67)]
    expected = {id(q): brute_force_range(ref_space, q, 4.0) for q in queries}
    with QueryService(
        catalog=catalog, planner_epsilon=0.3, planner_seed=1, cache_size=0
    ) as service:
        service.planner.calibrate(radii=[4.0], n_queries=4)
        with ThreadPoolExecutor(max_workers=8) as pool:
            answers = list(
                pool.map(
                    lambda q: (id(q), service.range_query(q, 4.0)), queries * 4
                )
            )
        stats = service.stats()
    for marker, answer in answers:
        assert answer == expected[marker]
    assert stats["dispatcher"]["queries"] == len(queries) * 4
    assert sum(stats["planner"]["routes"].values()) > 0
    assert set(stats["members"]) == set(catalog.ids())


def test_mutation_fanout_preserves_parity():
    dataset = make_words(160, seed=13)
    catalog = _build_catalog(dataset, names=("LAESA", "MVPT"))
    with QueryService(catalog=catalog, use_dispatcher=False) as service:
        q = dataset[0]
        before = service.range_query(q, 5.0)
        victim = before[-1]
        service.delete(victim)
        after = service.range_query(q, 5.0)
        assert victim not in after
        for m in catalog.members():
            assert m.index.range_query(q, 5.0) == after
        service.insert(dataset[victim], object_id=victim)
        assert service.range_query(q, 5.0) == before
        for m in catalog.members():
            assert m.index.range_query(q, 5.0) == before
        new_id = service.insert("zzbrandnew")
        assert new_id in service.range_query("zzbrandnew", 0.0)
        for m in catalog.members():
            assert m.index.range_query("zzbrandnew", 0.0) == [new_id]


def test_catalog_snapshot_roundtrip_and_hot_reload(tmp_path):
    dataset = make_words(160, seed=13)
    catalog = _build_catalog(dataset)
    queries = [dataset[i] for i in (0, 7, 23)]
    with QueryService(catalog=catalog, use_dispatcher=False) as service:
        expected = service.range_query_many(queries, 4.0)
        manifest = service.save(tmp_path / "cat")
    with QueryService.from_snapshot(
        manifest, use_dispatcher=False, calibrate=False
    ) as restored:
        assert restored.catalog.ids() == catalog.ids()
        assert restored.range_query_many(queries, 4.0) == expected
        # diverge, then hot reload back to the snapshot state
        victim = expected[0][-1]
        restored.delete(victim)
        assert restored.range_query_many(queries, 4.0) != expected
        info = restored.reload_from_snapshot(manifest)
        assert info.index_class == "IndexCatalog"
        assert restored.range_query_many(queries, 4.0) == expected
        assert restored.reload_generation == 1


def test_from_snapshots_builds_catalog_and_dedupes_ids(tmp_path):
    dataset = make_words(160, seed=13)
    catalog = _build_catalog(dataset, names=("LAESA", "VPT"))
    paths = []
    for i, m in enumerate(catalog.members()):
        paths.append(tmp_path / f"member{i}.snap")
        save_index(m.index, paths[-1])
    # plus a second LAESA restore: same family, id must dedupe
    paths.append(paths[0])
    with QueryService.from_snapshots(
        paths, calibrate=False, use_dispatcher=False
    ) as service:
        assert service.catalog.ids() == ["LAESA", "VPT", "LAESA#2"]
        q = dataset[3]
        expected = catalog.get("LAESA").range_query(q, 4.0)
        for member_id in service.catalog.ids():
            assert service.range_query(q, 4.0, index=member_id) == expected


def test_single_index_service_api_unchanged():
    dataset = make_words(120, seed=13)
    catalog = _build_catalog(dataset, names=("LAESA",))
    index = catalog.get("LAESA")
    with pytest.raises(ValueError, match="exactly one"):
        QueryService()
    with pytest.raises(ValueError, match="exactly one"):
        QueryService(index, catalog=catalog)
    with QueryService(index, use_dispatcher=False) as service:
        q = dataset[0]
        expected = service.range_query(q, 4.0)
        # pinning the service's own id is allowed; anything else is not
        assert service.range_query(q, 4.0, index=service.index_id) == expected
        with pytest.raises(ValueError, match="hosts only"):
            service.range_query(q, 4.0, index="other")
        stats = service.stats()
        assert "planner" not in stats and "members" not in stats


# ---------------------------------------------------------------------------
# HTTP surface: pins, /plan, health members
# ---------------------------------------------------------------------------


def test_http_catalog_surface():
    dataset = make_words(160, seed=13)
    catalog = _build_catalog(dataset)
    service = QueryService(catalog=catalog, planner_epsilon=0.0)
    service.planner.calibrate(radii=[4.0], n_queries=4)
    q = dataset[3]
    with service, HttpQueryServer(service) as server:
        server.start()
        client = ServiceClient(port=server.port)
        assert client.healthz()["members"] == catalog.ids()
        base = client.range_query(q, 4.0)
        for member_id in catalog.ids():
            assert client.range_query(q, 4.0, index=member_id) == base
        with pytest.raises(ServiceClientError) as excinfo:
            client.range_query(q, 4.0, index="nope")
        assert excinfo.value.status == 400
        plan = client.plan(radius=4.0)
        assert {row["index"] for row in plan} == set(catalog.ids())
        assert sum(row["chosen"] for row in plan) == 1
        assert all(row["kind"] == "knn" for row in client.plan(k=5))
        with pytest.raises(ValueError, match="exactly one"):
            client.plan()
        with pytest.raises(ValueError, match="exactly one"):
            client.plan(radius=1.0, k=5)
        stats = client.stats()
        assert "planner" in stats and "members" in stats


def test_http_single_index_rejects_catalog_features():
    dataset = make_words(120, seed=13)
    catalog = _build_catalog(dataset, names=("LAESA",))
    service = QueryService(catalog.get("LAESA"))
    q = dataset[3]
    with service, HttpQueryServer(service) as server:
        server.start()
        client = ServiceClient(port=server.port)
        assert "members" not in client.healthz()
        with pytest.raises(ServiceClientError) as excinfo:
            client.plan(radius=4.0)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client.range_query(q, 4.0, index="LAESA")
        assert excinfo.value.status == 400
