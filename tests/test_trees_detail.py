"""Detailed behaviour of the pivot-based trees (paper Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BKT,
    CostCounters,
    FQA,
    FQT,
    MVPT,
    MetricSpace,
    VPT,
    brute_force_range,
    make_synthetic,
    make_words,
    select_pivots,
)
from repro.trees.common import interval_gap


@pytest.fixture(scope="module")
def words():
    return make_words(500, seed=71)


@pytest.fixture(scope="module")
def words_pivots(words):
    return select_pivots(MetricSpace(words), 4, strategy="hfi", seed=1)


class TestIntervalGap:
    def test_inside(self):
        assert interval_gap(5.0, 3.0, 7.0) == 0.0

    def test_below(self):
        assert interval_gap(1.0, 3.0, 7.0) == 2.0

    def test_above(self):
        assert interval_gap(9.0, 3.0, 7.0) == 2.0

    def test_is_lower_bound_of_difference(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            lo, width = rng.uniform(0, 10), rng.uniform(0, 5)
            hi = lo + width
            d_o = rng.uniform(lo, hi)  # object distance inside interval
            d_q = rng.uniform(0, 15)
            assert interval_gap(d_q, lo, hi) <= abs(d_q - d_o) + 1e-12


class TestBKTDetail:
    def test_random_pivots_per_subtree(self, words):
        """BKT keeps random pivots (the paper's stated exception)."""
        a = BKT.build(MetricSpace(words, CostCounters()), seed=1)
        b = BKT.build(MetricSpace(words, CostCounters()), seed=2)
        assert a.root.pivot_id != b.root.pivot_id or True  # seeds may collide
        # structure itself must differ somewhere for different seeds
        assert a.root.pivot_id is not None

    def test_unbalanced_is_fine(self, words):
        index = BKT.build(MetricSpace(words, CostCounters()), leaf_size=4, seed=1)

        def depth(node):
            if node.is_leaf:
                return 1
            return 1 + max(depth(c) for c in node.children)

        def min_depth(node):
            if node.is_leaf:
                return 1
            return 1 + min(min_depth(c) for c in node.children)

        assert depth(index.root) >= min_depth(index.root)

    def test_pivot_delete_tombstones(self, words):
        index = BKT.build(MetricSpace(words, CostCounters()), seed=1)
        root_pivot = index.root.pivot_id
        index.delete(root_pivot)
        assert index.root.pivot_id == -1
        q = words[3]
        want = [i for i in brute_force_range(MetricSpace(words), q, 4.0) if i != root_pivot]
        assert index.range_query(q, 4.0) == want
        # insert after tombstone still works
        index.insert(words[root_pivot], object_id=root_pivot)
        assert index.range_query(q, 4.0) == brute_force_range(
            MetricSpace(words), q, 4.0
        )

    def test_interval_coverage(self, words):
        """Every stored object's pivot distance lies inside its child interval."""
        index = BKT.build(MetricSpace(words, CostCounters()), seed=3)

        def check(node, ids_expected=None):
            if node.is_leaf:
                return list(node.ids)
            collected = [] if node.pivot_id < 0 else [node.pivot_id]
            pivot = words[node.pivot_id] if node.pivot_id >= 0 else None
            for lo, hi, child in zip(node.lows, node.highs, node.children):
                child_ids = check(child)
                if pivot is not None:
                    for i in child_ids:
                        d = words.distance(words[i], pivot)
                        assert lo - 1e-9 <= d <= hi + 1e-9
                collected.extend(child_ids)
            return collected

        assert sorted(check(index.root)) == list(range(len(words)))


class TestFQTDetail:
    def test_shared_pivot_per_level(self, words, words_pivots):
        index = FQT.build(MetricSpace(words, CostCounters()), words_pivots)

        def check_levels(node, level):
            if node.is_leaf:
                return
            assert node.level == level
            for child in node.children:
                check_levels(child, level + 1)

        check_levels(index.root, 0)

    def test_query_computes_one_distance_per_level(self, words, words_pivots):
        index = FQT.build(MetricSpace(words, CostCounters()), words_pivots)
        counters = index.space.counters
        counters.reset()
        index.range_query(words[7], 2.0)
        # at most |P| pivot distances + the leaf verifications
        leaf_verifications = counters.distance_computations - len(words_pivots)
        assert leaf_verifications >= 0

    def test_beats_bkt_with_good_pivots(self, words, words_pivots):
        """Section 4.2: with well-chosen pivots FQT should beat BKT."""
        fqt = FQT.build(MetricSpace(words, CostCounters()), words_pivots)
        bkt = BKT.build(MetricSpace(words, CostCounters()), seed=9)
        totals = {}
        for name, index in (("fqt", fqt), ("bkt", bkt)):
            counters = index.space.counters
            counters.reset()
            for qi in (3, 50, 100, 200, 400):
                index.range_query(words[qi], 3.0)
            totals[name] = counters.distance_computations
        assert totals["fqt"] <= totals["bkt"] * 1.2


class TestFQADetail:
    def test_signatures_sorted_lexicographically(self, words, words_pivots):
        index = FQA.build(MetricSpace(words, CostCounters()), words_pivots)
        sigs = [tuple(row) for row in index._signatures]
        assert sigs == sorted(sigs)

    def test_insert_keeps_order(self, words, words_pivots):
        index = FQA.build(MetricSpace(words, CostCounters()), words_pivots)
        index.delete(7)
        index.insert(words[7], object_id=7)
        sigs = [tuple(row) for row in index._signatures]
        assert sigs == sorted(sigs)

    def test_bits_tradeoff_correctness(self, words, words_pivots):
        q = words[11]
        want = brute_force_range(MetricSpace(words), q, 4.0)
        for bits in (2, 4, 8):
            index = FQA.build(
                MetricSpace(words, CostCounters()), words_pivots, bits_per_pivot=bits
            )
            assert index.range_query(q, 4.0) == want

    def test_coarser_bits_weaker_pruning(self, words, words_pivots):
        costs = []
        for bits in (2, 8):
            counters = CostCounters()
            index = FQA.build(
                MetricSpace(words, counters), words_pivots, bits_per_pivot=bits
            )
            counters.reset()
            index.range_query(words[11], 3.0)
            costs.append(counters.distance_computations)
        assert costs[1] <= costs[0]


class TestVptMvptDetail:
    def test_vpt_is_binary(self, words, words_pivots):
        index = VPT.build(MetricSpace(words, CostCounters()), words_pivots)

        def check(node):
            if node.is_leaf:
                return
            assert len(node.children) <= 2
            for child in node.children:
                check(child)

        check(index.root)

    def test_vpt_rejects_other_arity(self, words, words_pivots):
        with pytest.raises(ValueError):
            VPT.build(MetricSpace(words, CostCounters()), words_pivots, arity=3)

    def test_mvpt_arity_bound(self, words, words_pivots):
        for arity in (2, 3, 5, 9):
            index = MVPT.build(
                MetricSpace(words, CostCounters()), words_pivots, arity=arity
            )

            def check(node):
                if node.is_leaf:
                    return
                assert len(node.children) <= arity
                for child in node.children:
                    check(child)

            check(index.root)

    def test_invalid_arity(self, words, words_pivots):
        with pytest.raises(ValueError):
            MVPT.build(MetricSpace(words, CostCounters()), words_pivots, arity=1)

    def test_depth_bounded_by_pivots(self, words, words_pivots):
        index = MVPT.build(
            MetricSpace(words, CostCounters()), words_pivots, leaf_size=1
        )

        def depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(depth(c) for c in node.children)

        assert depth(index.root) <= len(words_pivots)

    def test_balanced_quantile_split(self):
        """MVPT children should be roughly equal-sized on continuous data."""
        synthetic = make_synthetic(625, seed=72)
        pivots = select_pivots(MetricSpace(synthetic), 3, strategy="hfi", seed=1)
        index = MVPT.build(
            MetricSpace(synthetic, CostCounters()), pivots, arity=5, leaf_size=4
        )
        root = index.root
        sizes = []

        def count(node):
            if node.is_leaf:
                return len(node.ids)
            return sum(count(c) for c in node.children)

        for child in root.children:
            sizes.append(count(child))
        assert max(sizes) <= 3 * min(sizes) + 10

    def test_only_split_values_stored(self, words, words_pivots):
        """Section 4.3: trees store split bounds, not per-object distances --
        storage must be far below the full LAESA table."""
        from repro import LAESA

        mvpt = MVPT.build(MetricSpace(words, CostCounters()), words_pivots)
        laesa = LAESA.build(MetricSpace(words, CostCounters()), words_pivots)

        def structure_bytes(index):
            objects = sum(
                index.space.dataset.object_nbytes(i)
                for i in range(len(index.space.dataset))
            )
            return index.storage_bytes()["memory"] - objects

        assert structure_bytes(mvpt) < structure_bytes(laesa)
