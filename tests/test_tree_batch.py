"""Tree batch frontier engine: batch == sequential == brute force.

The engine (``repro.trees.common.FrontierTreeMixin``) answers a whole
query batch in one frontier descent; these tests pin its exactness for
every tree index across three metric families -- Euclidean (continuous,
unique distances), Hamming (discrete, tie-heavy -- the hard case for
canonical kNN tie-breaking), and QuadraticForm (the expensive-distance
representative) -- plus sharded fan-out, and the leaf-grouped paging
contract of CPT's batch verification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    MetricSpace,
    ShardedIndex,
    brute_force_knn_many,
    brute_force_range_many,
    select_pivots,
)
from repro.core.dataset import Dataset
from repro.core.distances import (
    DiscreteMetricAdapter,
    HammingDistance,
    L2,
    QuadraticFormDistance,
)
from repro.storage.pager import Pager
from repro.tables import CPT
from repro.trees import BKT, FQA, FQT, MVPT, VPT

N = 240
N_PIVOTS = 4


def _quadratic_form(dim: int, seed: int) -> QuadraticFormDistance:
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(dim, dim))
    return QuadraticFormDistance(basis @ basis.T + dim * np.eye(dim))


def _make_dataset(metric_name: str) -> Dataset:
    rng = np.random.default_rng(17)
    if metric_name == "euclidean":
        return Dataset(rng.normal(size=(N, 4)) * 50.0, L2, name="euclidean")
    if metric_name == "hamming":
        # tiny alphabet: distances collide constantly, so kNN boundaries
        # are decided by the canonical (distance, id) tie-breaking
        return Dataset(
            rng.integers(0, 3, size=(N, 8)), HammingDistance(), name="hamming"
        )
    if metric_name == "quadratic":
        return Dataset(
            rng.normal(size=(N, 6)) * 10.0, _quadratic_form(6, 23), name="quadratic"
        )
    raise ValueError(metric_name)


# a radius with moderate selectivity per metric family
RADIUS = {"euclidean": 60.0, "hamming": 5.0, "quadratic": 60.0}
METRICS = ("euclidean", "hamming", "quadratic")
TREES = ("VPT", "MVPT", "BKT", "FQT", "FQA")
DISCRETE_ONLY = ("BKT", "FQT", "FQA")


@pytest.fixture(scope="module")
def metric_datasets():
    out = {}
    for name in METRICS:
        dataset = _make_dataset(name)
        if name != "hamming":
            # the discrete-only trees run on the ceiled metric (the module's
            # documented route for continuous distances)
            out[name] = (
                dataset,
                Dataset(
                    dataset.objects,
                    DiscreteMetricAdapter(dataset.distance),
                    name=f"{name}-ceil",
                ),
            )
        else:
            out[name] = (dataset, dataset)
    return out


def _build_tree(tree_name: str, dataset: Dataset):
    space = MetricSpace(dataset, CostCounters())
    pivots = select_pivots(MetricSpace(dataset), N_PIVOTS, strategy="hfi", seed=3)
    if tree_name == "VPT":
        return VPT.build(space, pivots)
    if tree_name == "MVPT":
        return MVPT.build(space, pivots, arity=3)
    if tree_name == "BKT":
        return BKT.build(space, seed=5)
    if tree_name == "FQT":
        return FQT.build(space, pivots)
    if tree_name == "FQA":
        return FQA.build(space, pivots)
    raise ValueError(tree_name)


@pytest.fixture(scope="module")
def built_trees(metric_datasets):
    cache: dict = {}

    def get(metric_name: str, tree_name: str):
        key = (metric_name, tree_name)
        if key not in cache:
            continuous, discrete = metric_datasets[metric_name]
            dataset = discrete if tree_name in DISCRETE_ONLY else continuous
            cache[key] = (_build_tree(tree_name, dataset), dataset)
        return cache[key]

    return get


def _queries(dataset: Dataset) -> list:
    # members (exact-zero distances and their ties) plus a foreign blend
    blend = np.asarray(dataset[0]) * 0.5 + np.asarray(dataset[1]) * 0.5
    if dataset.distance.is_discrete:
        blend = np.rint(blend)
    return [dataset[3], dataset[len(dataset) // 2], blend]


@pytest.mark.parametrize("metric_name", METRICS)
@pytest.mark.parametrize("tree_name", TREES)
class TestTreeBatchEquality:
    def test_range(self, built_trees, metric_name, tree_name):
        index, dataset = built_trees(metric_name, tree_name)
        queries = _queries(dataset)
        radius = RADIUS[metric_name]
        batch = index.range_query_many(queries, radius)
        sequential = [index.range_query(q, radius) for q in queries]
        golden = brute_force_range_many(MetricSpace(dataset), queries, radius)
        assert batch == sequential == golden, f"{tree_name} on {metric_name}"

    def test_knn_with_ties(self, built_trees, metric_name, tree_name):
        index, dataset = built_trees(metric_name, tree_name)
        queries = _queries(dataset)
        for k in (1, 7, 25):
            batch = index.knn_query_many(queries, k)
            sequential = [index.knn_query(q, k) for q in queries]
            golden = brute_force_knn_many(MetricSpace(dataset), queries, k)
            assert batch == sequential == golden, (
                f"{tree_name} on {metric_name}, k={k}"
            )

    def test_batch_compdists_match_sequential_range(
        self, built_trees, metric_name, tree_name
    ):
        """The frontier engine amortises calls, never hides or adds work."""
        index, dataset = built_trees(metric_name, tree_name)
        queries = _queries(dataset)
        radius = RADIUS[metric_name]
        counters = index.space.counters
        counters.reset()
        for q in queries:
            index.range_query(q, radius)
        sequential = counters.distance_computations
        counters.reset()
        index.range_query_many(queries, radius)
        assert counters.distance_computations == sequential


@pytest.mark.parametrize("tree_name", TREES)
def test_knn_deferred_leaf_verification_large_batch(built_trees, tree_name):
    """Large divergent batches exercise the grouped leaf-flush path.

    MkNNQ leaf verification is deferred across consecutive leaf pops and
    flushed in mask-groups (one ``pairwise_objects`` call per distinct
    active set).  Stale pre-flush radii may only admit *extra* candidates
    -- every admitted candidate still fights the canonical (distance, id)
    heap -- so batch answers must stay bit-for-bit sequential.
    """
    metric_name = "hamming" if tree_name in DISCRETE_ONLY else "euclidean"
    index, dataset = built_trees(metric_name, tree_name)
    rng = np.random.default_rng(5)
    picks = rng.choice(len(dataset), size=40, replace=False)
    queries = [dataset[int(i)] for i in picks]
    for k in (2, 9):
        batch = index.knn_query_many(queries, k)
        sequential = [index.knn_query(q, k) for q in queries]
        assert batch == sequential, f"{tree_name} k={k}"


@pytest.mark.parametrize("metric_name", METRICS)
def test_tree_batch_across_shard_fanout(metric_datasets, metric_name):
    """Sharded fan-out over tree shards: merged batch answers stay golden."""
    dataset, _ = metric_datasets[metric_name]

    def build_shard(space: MetricSpace):
        pivots = select_pivots(
            MetricSpace(space.dataset), N_PIVOTS, strategy="hfi", seed=3
        )
        return MVPT.build(space, pivots, arity=3)

    space = MetricSpace(dataset, CostCounters())
    sharded = ShardedIndex.build(space, build_shard, n_shards=3, seed=1)
    queries = _queries(dataset)
    radius = RADIUS[metric_name]
    golden_range = brute_force_range_many(MetricSpace(dataset), queries, radius)
    assert sharded.range_query_many(queries, radius) == golden_range
    for k in (1, 9):
        golden_knn = brute_force_knn_many(MetricSpace(dataset), queries, k)
        assert sharded.knn_query_many(queries, k) == golden_knn


class TestCptLeafGroupedPaging:
    """CPT's batch verification reads each touched leaf once per batch."""

    @pytest.fixture(scope="class")
    def cpt(self):
        dataset = _make_dataset("euclidean")
        space = MetricSpace(dataset, CostCounters())
        pivots = select_pivots(MetricSpace(dataset), N_PIVOTS, strategy="hfi", seed=3)
        # small pages -> several objects per leaf, many leaves; cache stays
        # 0 so every pager read is a counted cold read
        return CPT.build(space, pivots, pager=Pager(page_size=1024, counters=space.counters))

    def test_grouped_reads_do_not_exceed_sequential(self, cpt):
        dataset = cpt.space.dataset
        # a shared-leaf batch: close-by members whose candidate balls overlap
        queries = [dataset[5], dataset[5], dataset[6], dataset[7]]
        radius = RADIUS["euclidean"]
        counters = cpt.space.counters
        counters.reset()
        sequential = [cpt.range_query(q, radius) for q in queries]
        seq = counters.snapshot()
        counters.reset()
        batch = cpt.range_query_many(queries, radius)
        grouped = counters.snapshot()
        assert batch == sequential
        assert grouped.page_reads <= seq.page_reads
        # identical queries share every leaf, so grouping must actually bite
        assert grouped.page_reads < seq.page_reads
        assert grouped.grouped_hits > 0
        # compdists are untouched by the paging change
        assert grouped.distance_computations == seq.distance_computations

    def test_knn_batch_grouped_fetches(self, cpt):
        dataset = cpt.space.dataset
        queries = [dataset[10], dataset[11]]
        counters = cpt.space.counters
        counters.reset()
        sequential = [cpt.knn_query(q, 6) for q in queries]
        seq = counters.snapshot()
        counters.reset()
        batch = cpt.knn_query_many(queries, 6)
        grouped = counters.snapshot()
        assert batch == sequential
        assert grouped.grouped_hits > 0
        assert grouped.page_reads <= seq.page_reads

    def test_chunked_fetch_stays_exact(self, cpt, monkeypatch):
        """Tiny fetch chunks (bounded memory) change I/O, never answers."""
        dataset = cpt.space.dataset
        queries = [dataset[5], dataset[120], dataset[200]]
        radius = RADIUS["euclidean"]
        expected = cpt.range_query_many(queries, radius)
        monkeypatch.setattr(type(cpt), "_FETCH_CHUNK", 5)
        assert cpt.range_query_many(queries, radius) == expected

    def test_fetch_objects_many_matches_singles(self, cpt):
        ids = [3, 50, 3, 121, 50]
        many = cpt.mtree.fetch_objects_many(ids)
        singles = [cpt.mtree.fetch_object(i) for i in ids]
        for a, b in zip(many, singles):
            assert np.array_equal(a, b)
        with pytest.raises(KeyError):
            cpt.mtree.fetch_objects_many([3, 10_000])


class TestPagerCounters:
    """page_reads counts cold I/O; buffer and grouped hits are separate."""

    def test_buffer_hit_counted_separately(self):
        counters = CostCounters()
        pager = Pager(page_size=4096, counters=counters, cache_bytes=64 * 1024)
        page = pager.allocate()
        pager.write(page, {"payload": list(range(10))})
        pager.flush()
        counters.reset()
        pager.read(page)  # served by the pool: no cold read
        assert counters.page_reads == 0
        assert counters.buffer_hits == 1
        pager.set_cache_bytes(0)
        counters.reset()
        pager.read(page)  # pool disabled: a real page access
        assert counters.page_reads == 1
        assert counters.buffer_hits == 0

    def test_read_many_counts_grouped_hits(self):
        counters = CostCounters()
        pager = Pager(page_size=4096, counters=counters)
        pages = [pager.allocate() for _ in range(3)]
        for page in pages:
            pager.write(page, ("node", page))
        counters.reset()
        nodes = pager.read_many([pages[0], pages[1], pages[0], pages[0], pages[2]])
        assert set(nodes) == set(pages)
        assert counters.page_reads == 3  # one cold read per distinct page
        assert counters.grouped_hits == 2  # the repeats rode along
