"""CLI commands and the shared experiment functions (micro scale)."""

from __future__ import annotations

import threading

import pytest

from repro.bench import (
    default_workloads,
    exp_ablation_mvpt_arity,
    exp_fig14_ept,
    exp_fig16_range,
    exp_fig18_pivots,
    exp_table2_datasets,
    exp_table4_construction,
    exp_table5_ranking,
    exp_table6_updates,
    exp_table7_ranking,
)
from repro.cli import main


@pytest.fixture(scope="module")
def micro_workloads():
    return default_workloads(n=150, color_n=100, n_queries=2)


class TestExperimentFunctions:
    INDEXES = ("LAESA", "MVPT", "SPB-tree")

    def test_table2(self, micro_workloads):
        rows = exp_table2_datasets(micro_workloads)
        assert {r["Dataset"] for r in rows} == {"LA", "Words", "Color", "Synthetic"}

    def test_table4_and_5(self, micro_workloads):
        workloads = {"Words": micro_workloads["Words"]}
        rows, built = exp_table4_construction(workloads, self.INDEXES)
        assert len(rows) == 3
        assert set(built["Words"]) == set(self.INDEXES)
        ranking = exp_table5_ranking(rows)
        assert "Compdists" in ranking and len(ranking["Compdists"]) == 3

    def test_table6_and_7(self, micro_workloads):
        workloads = {"Words": micro_workloads["Words"]}
        rows = exp_table6_updates(workloads, self.INDEXES, n_updates=3)
        assert len(rows) == 3
        ranking = exp_table7_ranking(rows)
        assert all(len(scores) == 3 for scores in ranking.values())

    def test_fig14(self, micro_workloads):
        workloads = {"LA": micro_workloads["LA"]}
        rows = exp_fig14_ept(workloads, ks=(2, 5))
        assert {r["Index"] for r in rows} == {"EPT", "EPT*"}
        assert len(rows) == 4

    def test_fig16_discrete_indexes_included_only_where_legal(self, micro_workloads):
        workloads = {
            "LA": micro_workloads["LA"],
            "Words": micro_workloads["Words"],
        }
        rows = exp_fig16_range(
            workloads, ("LAESA", "FQT"), selectivities=(0.16,)
        )
        la_indexes = {r["Index"] for r in rows if r["Dataset"] == "LA"}
        words_indexes = {r["Index"] for r in rows if r["Dataset"] == "Words"}
        assert "FQT" not in la_indexes  # continuous metric: FQT skipped
        assert "FQT" in words_indexes

    def test_fig18_skips_mindex_at_one_pivot(self, micro_workloads):
        workloads = {"LA": micro_workloads["LA"]}
        rows = exp_fig18_pivots(
            workloads, ("LAESA", "M-index*"), pivot_counts=(1, 3), k=3
        )
        at_one = {r["Index"] for r in rows if r["|P|"] == 1}
        at_three = {r["Index"] for r in rows if r["|P|"] == 3}
        assert at_one == {"LAESA"}
        assert at_three == {"LAESA", "M-index*"}

    def test_ablation_rows(self, micro_workloads):
        rows = exp_ablation_mvpt_arity(micro_workloads["Words"], arities=(2, 5))
        assert [r["m"] for r in rows] == [2, 5]


class TestCli:
    def test_indexes_command(self, capsys):
        assert main(["indexes"]) == 0
        out = capsys.readouterr().out
        assert "SPB-tree" in out and "MVPT" in out

    def test_stats_command(self, capsys):
        assert main(["stats", "Words", "--n", "200"]) == 0
        out = capsys.readouterr().out
        assert "edit" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "--dataset", "Words", "--n", "200", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "MRQ" in out and "MkNNQ" in out

    def test_compare_command(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--dataset",
                    "Words",
                    "--n",
                    "200",
                    "--queries",
                    "2",
                    "--indexes",
                    "LAESA",
                    "MVPT",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "LAESA" in out and "MVPT" in out

    def test_compare_unknown_index(self, capsys):
        assert main(["compare", "--indexes", "NoSuch", "--n", "150"]) == 2

    def test_compare_skips_discrete_on_continuous(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--dataset",
                    "LA",
                    "--n",
                    "150",
                    "--queries",
                    "1",
                    "--indexes",
                    "BKT",
                    "LAESA",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skipping BKT" in out

    def test_serve_command_runs(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--dataset",
                    "Words",
                    "--n",
                    "150",
                    "--queries",
                    "2",
                    "--requests",
                    "8",
                    "--clients",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "served 8 requests" in out
        assert not _dispatcher_threads()


def _dispatcher_threads():
    return [
        t
        for t in threading.enumerate()
        if t.name == "repro-dispatcher" and t.is_alive()
    ]


class TestServeAlwaysClosesService:
    """`repro serve` must never leak the dispatcher worker thread.

    The defect: the service (whose constructor starts the worker) was
    built *before* workload synthesis and radius calibration -- an
    exception in either leaked the thread.  Now everything fallible runs
    before construction or inside `with service:`.
    """

    def _snapshot(self, tmp_path):
        from repro import CostCounters, MetricSpace, make_words, save_index
        from repro.core.pivot_selection import select_pivots
        from repro.tables import LAESA

        words = make_words(80, seed=3)
        space = MetricSpace(words, CostCounters())
        index = LAESA.build(
            space, select_pivots(MetricSpace(words), 3, strategy="hfi", seed=0)
        )
        path = tmp_path / "serve.snap"
        save_index(index, path)
        return path

    def test_workload_failure_leaks_no_dispatcher_thread(
        self, tmp_path, monkeypatch
    ):
        """The reproduction from the issue: make_workload raising while
        serving a snapshot used to strand the freshly started worker."""
        import repro.cli as cli

        path = self._snapshot(tmp_path)
        before = len(_dispatcher_threads())

        def broken_workload(*args, **kwargs):
            raise RuntimeError("synthetic workload failure")

        monkeypatch.setattr(cli, "make_workload", broken_workload)
        with pytest.raises(RuntimeError, match="synthetic workload failure"):
            main(["serve", "--snapshot", str(path), "--requests", "4"])
        assert len(_dispatcher_threads()) == before

    def test_traffic_failure_still_closes_service(self, tmp_path, monkeypatch):
        """An exception after construction (here: the client pool) must
        close the service on the way out."""
        import repro.cli as cli

        path = self._snapshot(tmp_path)
        before = len(_dispatcher_threads())

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("no pool for you")

        monkeypatch.setattr(cli, "ThreadPoolExecutor", BrokenPool)
        with pytest.raises(RuntimeError, match="no pool for you"):
            main(["serve", "--snapshot", str(path), "--requests", "4"])
        assert len(_dispatcher_threads()) == before
