"""Edge cases and failure injection across substrates and indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    Dataset,
    EditDistance,
    L2,
    MetricSpace,
    brute_force_knn,
    brute_force_range,
    make_la,
    make_uniform,
    select_pivots,
)
from repro.bench.runner import build_index, set_cache
from repro.btree import BPlusTree
from repro.mtree import MTree
from repro.rtree import Rect, RTree
from repro.storage import BufferPool, Pager, PageStore


class TestTinyDatasets:
    """Indexes must work when n is barely larger than |P|."""

    @pytest.mark.parametrize(
        "index_name",
        ["LAESA", "EPT", "EPT*", "VPT", "MVPT", "OmniR-tree", "M-index*", "SPB-tree", "CPT", "PM-tree", "DEPT"],
    )
    def test_five_objects(self, index_name):
        data = Dataset(
            np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0], [9.0, 9.0]]),
            L2,
            name="tiny",
        )
        space = MetricSpace(data, CostCounters())
        pivots = select_pivots(MetricSpace(data), 2, strategy="hfi", seed=0)
        kwargs = {"maxnum": 2} if index_name in ("M-index", "M-index*") else {}
        index = build_index(index_name, space, pivots, seed=1, **kwargs)
        reference = MetricSpace(data)
        q = np.array([0.5, 0.5])
        assert index.range_query(q, 1.0) == brute_force_range(reference, q, 1.0)
        got = [round(n.distance, 9) for n in index.knn_query(q, 5)]
        want = [round(n.distance, 9) for n in brute_force_knn(reference, q, 5)]
        assert got == want

    def test_duplicate_objects(self):
        points = np.zeros((20, 2))
        points[10:] = 1.0
        data = Dataset(points, L2, name="dups")
        space = MetricSpace(data, CostCounters())
        pivots = [0, 10]
        for index_name in ("LAESA", "MVPT", "SPB-tree", "M-index*"):
            index = build_index(index_name, MetricSpace(data, CostCounters()), pivots)
            hits = index.range_query(np.zeros(2), 0.0)
            assert hits == list(range(10)), index_name

    def test_single_word_queries(self):
        data = Dataset(["alpha", "beta", "gamma"], EditDistance())
        space = MetricSpace(data, CostCounters())
        index = build_index("MVPT", space, [0])
        assert index.range_query("alpha", 0) == [0]
        assert index.knn_query("alphq", 1)[0].object_id == 0


class TestStorageFailureInjection:
    def test_pagestore_free_then_read(self):
        store = PageStore(page_size=128)
        page = store.allocate()
        store.write(page, "x")
        store.free(page)
        with pytest.raises(KeyError):
            store.read(page)

    def test_bufferpool_does_not_hold_oversized(self):
        store = PageStore(page_size=128)
        pool = BufferPool(store, capacity_bytes=64)
        page = store.allocate()
        pool.write(page, "y" * 500)  # larger than capacity: write-through
        assert pool.read(page) == "y" * 500  # read-through, still correct
        assert pool._used_bytes <= 64

    def test_pager_write_unallocated(self):
        pager = Pager(page_size=128)
        with pytest.raises(KeyError):
            pager.store.write(123, "z")

    def test_btree_search_empty(self):
        tree = BPlusTree(Pager(page_size=256))
        assert tree.search(5) == []
        assert list(tree.range_scan(0, 10)) == []
        assert not tree.delete(5)

    def test_rtree_duplicate_points(self):
        tree = RTree(Pager(page_size=512), dims=2)
        p = np.array([1.0, 1.0])
        for i in range(30):
            tree.insert(p, i)
        tree.check_invariants()
        hits = sorted(pl for _, pl in tree.search_rect(Rect([1, 1], [1, 1])))
        assert hits == list(range(30))
        assert tree.delete(p, 17)
        hits = sorted(pl for _, pl in tree.search_rect(Rect([1, 1], [1, 1])))
        assert 17 not in hits and len(hits) == 29

    def test_mtree_empty_queries(self):
        data = make_uniform(5, dim=2, seed=0)
        space = MetricSpace(data)
        tree = MTree(space, Pager(page_size=512))
        assert tree.range_query(data[0], 10.0) == []
        assert tree.knn_query(data[0], 3) == []
        assert not tree.delete(0)


class TestCacheConfiguration:
    @pytest.mark.parametrize("index_name", ["SPB-tree", "M-index*", "CPT", "PM-tree", "OmniR-tree", "DEPT"])
    def test_set_cache_roundtrip(self, index_name):
        data = make_la(200, seed=91)
        space = MetricSpace(data, CostCounters())
        pivots = select_pivots(MetricSpace(data), 3, strategy="hfi", seed=0)
        kwargs = {"maxnum": 32} if index_name in ("M-index", "M-index*") else {}
        index = build_index(index_name, space, pivots, **kwargs)
        q = data[0]
        # warm cache: repeated identical queries should cost fewer PAs
        set_cache(index, 256 * 1024)
        counters = space.counters
        index.range_query(q, 300.0)
        counters.reset()
        index.range_query(q, 300.0)
        warm = counters.page_reads
        set_cache(index, 0)
        counters.reset()
        index.range_query(q, 300.0)
        cold = counters.page_reads
        assert warm <= cold

    def test_set_cache_noop_for_memory_index(self):
        data = make_la(100, seed=92)
        space = MetricSpace(data, CostCounters())
        pivots = select_pivots(MetricSpace(data), 2, strategy="hfi", seed=0)
        index = build_index("LAESA", space, pivots)
        set_cache(index, 1024)  # must not raise


class TestShardedWithDiskShards:
    def test_sharded_spb(self):
        from repro import SPBTree, ShardedIndex

        data = make_la(240, seed=93)
        space = MetricSpace(data, CostCounters())

        def build_shard(shard_space):
            pivots = select_pivots(shard_space, 2, strategy="hfi", seed=1)
            return SPBTree.build(shard_space, pivots)

        index = ShardedIndex.build(space, build_shard, n_shards=3, seed=0)
        reference = MetricSpace(data)
        q = data[7]
        assert index.range_query(q, 700.0) == brute_force_range(reference, q, 700.0)
        assert index.storage_bytes()["disk"] > 0


class TestQueryRobustness:
    def test_negative_radius_returns_empty(self):
        data = make_la(100, seed=94)
        space = MetricSpace(data, CostCounters())
        pivots = select_pivots(MetricSpace(data), 2, strategy="hfi", seed=0)
        for name in ("LAESA", "MVPT", "SPB-tree"):
            index = build_index(name, MetricSpace(data, CostCounters()), pivots)
            assert index.range_query(data[0], -1.0) == []

    def test_huge_radius_returns_everything(self):
        data = make_la(100, seed=95)
        pivots = select_pivots(MetricSpace(data), 2, strategy="hfi", seed=0)
        for name in ("LAESA", "MVPT", "SPB-tree", "M-index*"):
            index = build_index(name, MetricSpace(data, CostCounters()), pivots)
            assert index.range_query(data[0], 1e9) == list(range(100))
