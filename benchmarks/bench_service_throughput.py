"""Query service layer: dispatcher + result cache vs naive per-query loop.

Not a paper experiment -- this guards the repo's own serving subsystem:
concurrent single-query traffic pushed through
:class:`~repro.service.QueryService` (micro-batching dispatcher feeding the
vectorised batch layer, LRU result cache in front) must beat the naive
sequential one-query-at-a-time loop, while returning identical answers
(exactness is asserted inside :func:`repro.bench.run_service_comparison`).

The floor is asserted on LAESA with a warm cache (the acceptance criterion
of the service subsystem): repeat traffic served from the LRU must be at
least 2x faster than re-evaluating every query.  Cold-cache dispatcher
throughput is reported but only sanity-checked loosely -- micro-batching
pays thread-coordination overhead per query, so its margin over a tight
in-process loop is workload-dependent and noisy on shared CI runners.
"""

from __future__ import annotations

import pytest

from repro.bench import exp_service_throughput, format_table

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

GATED = ("LA",)
MIN_WARM_SPEEDUP = 2.0
MIN_HIT_RATE = 0.1


@pytest.fixture(scope="module")
def service_rows(workloads, built_indexes):
    subset = {name: workloads[name] for name in GATED}
    built = {name: built_indexes(name) for name in GATED}
    return exp_service_throughput(subset, built=built)


def test_service_throughput(service_rows, benchmark, workloads, built_indexes):
    emit(
        "service_throughput",
        format_table(
            service_rows,
            title="Query service: naive loop vs dispatcher + LRU cache (q/s)",
            first_column="Dataset",
        ),
    )
    laesa = [r for r in service_rows if r["Index"] == "LAESA"]
    assert laesa, "LAESA rows missing from service throughput experiment"
    for row in laesa:
        assert row["warm speedup"] >= MIN_WARM_SPEEDUP, row
        assert row["hit rate"] >= MIN_HIT_RATE, row
    workload = workloads["LA"]
    radius = workload.radius_for(0.16)
    index = built_indexes("LA")["LAESA"].index

    from repro.service import QueryService

    with QueryService(index, max_batch_size=16, max_wait_ms=1.0) as service:
        service.range_query_many(workload.queries, radius)  # warm the cache
        benchmark(service.range_query_many, workload.queries, radius)
