"""Tables 4 + 5: construction costs, storage sizes, and rankings.

Paper shapes to check (Section 6.2): in-memory tables/trees build fastest;
EPT* is by far the costliest build (PSA); CPT and the PM-tree pay extra
distance computations for their M-trees; the SPB-tree has the lowest PA and
the smallest disk footprint; CPT/PM-tree storage is the largest.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    DEFAULT_INDEX_NAMES,
    exp_table4_construction,
    exp_table5_ranking,
    format_ranking,
    format_table,
    measure_build,
    shared_pivots,
)

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)


@pytest.fixture(scope="module")
def table4(workloads, built_indexes):
    rows = []
    built = {}
    for wl_name, workload in workloads.items():
        built[wl_name] = built_indexes(wl_name)
        for index_name, result in built[wl_name].items():
            rows.append(
                {
                    "Dataset": wl_name,
                    "Index": index_name,
                    "PA": result.page_accesses,
                    "Compdists": result.compdists,
                    "Time (s)": round(result.seconds, 3),
                    "Mem (KB)": round(result.memory_bytes / 1024, 1),
                    "Disk (KB)": round(result.disk_bytes / 1024, 1),
                }
            )
    return rows


def test_table4_construction_costs(table4, benchmark, workloads):
    emit(
        "table4_construction",
        format_table(
            table4, title="Table 4: construction costs and storage", first_column="Dataset"
        ),
    )
    by_key = {(r["Dataset"], r["Index"]): r for r in table4}
    for wl_name in ("LA", "Words"):
        # EPT* is the costliest build in compdists (paper Table 4)
        star = by_key[(wl_name, "EPT*")]["Compdists"]
        assert star >= by_key[(wl_name, "LAESA")]["Compdists"]
        # CPT / PM-tree pay M-tree construction distances
        assert by_key[(wl_name, "CPT")]["Compdists"] > by_key[(wl_name, "LAESA")]["Compdists"]
        assert by_key[(wl_name, "PM-tree")]["Compdists"] > by_key[(wl_name, "LAESA")]["Compdists"]
        # SPB-tree beats PM-tree on construction PA
        assert by_key[(wl_name, "SPB-tree")]["PA"] < by_key[(wl_name, "PM-tree")]["PA"]
    # time one representative build
    workload = workloads["Words"]
    pivots = shared_pivots(workload, 5)
    benchmark.pedantic(
        lambda: measure_build("MVPT", workload, pivots), rounds=2, iterations=1
    )


def test_table5_construction_ranking(table4, benchmark):
    metrics = exp_table5_ranking(table4)
    lines = [
        format_ranking(scores, metric)
        for metric, scores in metrics.items()
        if scores
    ]
    emit("table5_ranking", "Table 5: construction/storage ranking\n" + "\n".join(lines))
    benchmark.pedantic(lambda: exp_table5_ranking(table4), rounds=3, iterations=1)
