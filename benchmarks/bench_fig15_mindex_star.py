"""Figure 15: M-index vs M-index* -- MkNNQ compdists, PA and CPU vs k.

Paper shape: the M-index answers MkNNQ by repeated range queries (redundant
page accesses and CPU); the M-index* traverses once, best-first, using the
cluster MBBs.  M-index* therefore wins on PA/CPU, with similar compdists.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, measure_build, run_knn_queries, shared_pivots

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

KS = (5, 10, 20, 50, 100)


@pytest.fixture(scope="module")
def fig15(workloads):
    rows = []
    per_index = {}
    for wl_name, workload in workloads.items():
        pivots = shared_pivots(workload, 5)
        for index_name in ("M-index", "M-index*"):
            result = measure_build(index_name, workload, pivots)
            per_index[(wl_name, index_name)] = result.index
            for k in KS:
                cost = run_knn_queries(result.index, workload.queries, k)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "k": k,
                        "Compdists": round(cost.compdists, 1),
                        "PA": round(cost.page_accesses, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows, per_index


def test_fig15_mindex_vs_star(fig15, benchmark, workloads):
    rows, per_index = fig15
    emit(
        "fig15_mindex_star",
        format_table(
            rows, title="Figure 15: M-index vs M-index* (MkNNQ vs k)", first_column="Dataset"
        ),
    )
    by = {(r["Dataset"], r["Index"], r["k"]): r for r in rows}
    # shape: at the largest k (where repeated traversals hurt most), the
    # M-index* needs no more distance computations than the M-index
    for wl_name in ("LA", "Words", "Color", "Synthetic"):
        star = by[(wl_name, "M-index*", 100)]["Compdists"]
        plain = by[(wl_name, "M-index", 100)]["Compdists"]
        assert star <= plain * 1.2, f"M-index* compdists regressed on {wl_name}"
    index = per_index[("LA", "M-index*")]
    q = workloads["LA"].queries[0]
    benchmark(lambda: index.knn_query(q, 20))
