"""HTTP front-end overhead: batch endpoints vs in-process batch calls.

Not a paper experiment -- this guards the repo's own serving subsystem: a
batch of queries POSTed to :class:`~repro.service.http.HttpQueryServer`'s
``/range_many`` / ``/knn_many`` endpoints must stay close to the identical
in-process ``range_query_many`` / ``knn_query_many`` call.  Answers are
asserted bit-for-bit equal inside :func:`repro.bench.run_http_comparison`
before anything is timed, and the result cache is disabled on both sides so
the comparison measures evaluation + wire, not a dict lookup.

Two gates:

* **Words (gated at <= 2x)** -- edit distance is compute-bound, so the
  ratio honestly reports what the wire adds to real serving work (measured
  ~1.0x: JSON codec + one localhost round trip disappear into evaluation).
* **LA (gated on absolute overhead)** -- the vectorised L2 kernel answers a
  whole batch in under a millisecond, so a *ratio* there would only measure
  the JSON codec against an almost-free baseline and flap on CI runners.
  Instead the absolute wire overhead per batch (http ms - inproc ms) is
  bounded, which still catches codec regressions on numeric payloads.
"""

from __future__ import annotations

import pytest

from repro.bench import exp_http_throughput, format_table

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

GATED_RATIO = "Words"
GATED_OVERHEAD = "LA"
MAX_RATIO = 2.0  # compute-bound workload: the wire must all but vanish
MAX_OVERHEAD_MS = 25.0  # vector workload: absolute codec + round-trip budget


@pytest.fixture(scope="module")
def http_rows(workloads, built_indexes):
    subset = {name: workloads[name] for name in (GATED_RATIO, GATED_OVERHEAD)}
    built = {name: built_indexes(name) for name in subset}
    return exp_http_throughput(subset, built=built, repeats=3)


def test_http_throughput(http_rows, benchmark, workloads, built_indexes):
    emit(
        "http_throughput",
        format_table(
            http_rows,
            title="HTTP loopback batch endpoints vs in-process *_query_many",
            first_column="Dataset",
        ),
    )
    # one row per (dataset, codec) since the binary wire protocol landed;
    # these gates bound the original JSON protocol, bench_wire_codec.py
    # gates the binary fast path
    by_dataset = {
        (row["Dataset"], row["codec"]): row for row in http_rows
    }
    words = by_dataset[(GATED_RATIO, "json")]
    assert words["MRQ ratio"] <= MAX_RATIO, words
    assert words["kNN ratio"] <= MAX_RATIO, words
    la = by_dataset[(GATED_OVERHEAD, "json")]
    assert la["MRQ http ms"] - la["MRQ inproc ms"] <= MAX_OVERHEAD_MS, la
    assert la["kNN http ms"] - la["kNN inproc ms"] <= MAX_OVERHEAD_MS, la

    from repro.service import QueryService
    from repro.service.http import HttpQueryServer, ServiceClient

    workload = workloads[GATED_OVERHEAD]
    radius = workload.radius_for(0.16)
    index = built_indexes(GATED_OVERHEAD)["LAESA"].index
    with QueryService(index, cache_size=0, use_dispatcher=False) as service:
        with HttpQueryServer(service).start() as server:
            with ServiceClient(port=server.port) as client:
                benchmark(client.range_query_many, workload.queries, radius)
