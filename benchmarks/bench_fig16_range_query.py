"""Figure 16: MRQ performance vs radius r for all indexes on all datasets.

Paper shapes: query cost grows with r; in-memory indexes have the lowest
CPU; the SPB-tree has the lowest PA among disk indexes; CPT and the PM-tree
have the highest PA; the pivot-based trees pay somewhat more compdists than
the tables (they store only part of the pre-computed distances).
"""

from __future__ import annotations

import pytest

from repro.bench import ascii_chart, format_table, run_range_queries, series_from_rows

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

SELECTIVITIES = (0.04, 0.08, 0.16, 0.32, 0.64)


@pytest.fixture(scope="module")
def fig16(workloads, built_indexes):
    rows = []
    for wl_name, workload in workloads.items():
        indexes = built_indexes(wl_name)
        for selectivity in SELECTIVITIES:
            radius = workload.radius_for(selectivity)
            for index_name, result in indexes.items():
                cost = run_range_queries(result.index, workload.queries, radius)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "r (%)": int(selectivity * 100),
                        "Compdists": round(cost.compdists, 1),
                        "PA": round(cost.page_accesses, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows


def test_fig16_range_query_costs(fig16, benchmark, workloads, built_indexes):
    charts = []
    for wl_name in workloads:
        wl_rows = [r for r in fig16 if r["Dataset"] == wl_name]
        charts.append(
            ascii_chart(
                series_from_rows(wl_rows, "r (%)", "Compdists"),
                title=f"Figure 16 ({wl_name}): MRQ compdists vs r",
                log_y=True,
            )
        )
    emit(
        "fig16_range",
        format_table(fig16, title="Figure 16: MRQ cost vs r", first_column="Dataset")
        + "\n\n"
        + "\n\n".join(charts),
    )
    by = {(r["Dataset"], r["Index"], r["r (%)"]): r for r in fig16}

    # cost grows with the radius
    for wl_name in workloads:
        for index_name in ("LAESA", "MVPT", "SPB-tree"):
            assert (
                by[(wl_name, index_name, 64)]["Compdists"]
                >= by[(wl_name, index_name, 4)]["Compdists"]
            )
    # SPB-tree I/O <= CPT and PM-tree I/O (disk shape, Section 6.5.1).
    # CPT/PM-tree run on 40 KB pages on Color/Synthetic (the paper's rule),
    # so compare bytes accessed, not raw page counts.
    def bytes_accessed(index_name: str, wl_name: str) -> float:
        page_kb = (
            40
            if index_name in ("CPT", "PM-tree") and wl_name in ("Color", "Synthetic")
            else 4
        )
        return by[(wl_name, index_name, 16)]["PA"] * page_kb

    for wl_name in workloads:
        spb = bytes_accessed("SPB-tree", wl_name)
        assert spb <= bytes_accessed("CPT", wl_name) * 1.2
        assert spb <= bytes_accessed("PM-tree", wl_name) * 1.2

    index = built_indexes("LA")["SPB-tree"].index
    workload = workloads["LA"]
    radius = workload.radius_for(0.16)
    benchmark(lambda: index.range_query(workload.queries[0], radius))
