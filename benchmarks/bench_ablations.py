"""Ablations on the design choices the paper discusses but does not chart.

* Pivot selection strategy (Section 1: the reason the study fixes HFI);
* MVPT arity m (Section 4.3: pruning rises then falls with m);
* SPB-tree space-filling curve (Section 5.4: Hilbert vs Z-order locality).
"""

from __future__ import annotations

from repro.bench import (
    exp_ablation_mvpt_arity,
    exp_ablation_pivot_selection,
    exp_ablation_sfc,
    format_table,
)

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)


def test_ablation_pivot_selection(workloads, benchmark):
    workload = workloads["LA"]
    rows = exp_ablation_pivot_selection(workload)
    emit(
        "ablation_pivot_selection",
        format_table(
            rows,
            title="Ablation: pivot selection strategy (LAESA MRQ on LA)",
            first_column="Strategy",
        ),
    )
    by = {r["Strategy"]: r["Compdists"] for r in rows}
    # the study's choice: HFI should beat random selection
    assert by["hfi"] <= by["random"] * 1.05
    benchmark.pedantic(
        lambda: exp_ablation_pivot_selection(workload, strategies=("random",)),
        rounds=1,
        iterations=1,
    )


def test_ablation_mvpt_arity(workloads, benchmark):
    workload = workloads["Words"]
    rows = exp_ablation_mvpt_arity(workload)
    emit(
        "ablation_mvpt_arity",
        format_table(
            rows, title="Ablation: MVPT arity m (MkNNQ on Words)", first_column="m"
        ),
    )
    assert len(rows) == 4
    benchmark.pedantic(
        lambda: exp_ablation_mvpt_arity(workload, arities=(5,)), rounds=1, iterations=1
    )


def test_ablation_sfc(workloads, benchmark):
    workload = workloads["LA"]
    rows = exp_ablation_sfc(workload)
    emit(
        "ablation_sfc",
        format_table(
            rows, title="Ablation: SPB-tree SFC (Hilbert vs Z-order on LA)",
            first_column="Curve",
        ),
    )
    by = {r["Curve"]: r for r in rows}
    # Hilbert's locality should not lose to Z-order on page accesses
    assert by["Hilbert"]["kNN PA"] <= by["Z-order"]["kNN PA"] * 1.25
    benchmark.pedantic(
        lambda: exp_ablation_sfc(workload), rounds=1, iterations=1
    )
