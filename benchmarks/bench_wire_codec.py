"""Binary wire codec + memmap snapshot gates: the codec tax must stay dead.

Two perf gates guard the zero-copy paths introduced with the binary wire
protocol (``repro.service.wire``) and the v2 snapshot format:

* **Binary HTTP batch ratio (Color, gated at <= 1.2x)** -- a batch of
  vector queries POSTed with ``Content-Type: application/x-repro-binary``
  must stay within 1.2x of the identical in-process ``*_query_many`` call.
  JSON pays a per-element codec tax (measured 3-8x on this workload); the
  binary frames ship the same numbers as raw little-endian buffers, so the
  wire all but disappears into evaluation.
* **v2 memmap restore (gated at <= 0.25x of v1)** -- restoring the largest
  snapshot in this bench via the v2 format (vector tables as page-aligned
  regions mapped with ``numpy.memmap``) must take at most a quarter of the
  v1 full-pickle restore wall time, answer queries identically, and spend
  zero distance computations doing so.

Scale note: this bench pins its own Color cardinality
(``REPRO_WIRE_COLOR_N``, default 6000) instead of following
``REPRO_BENCH_COLOR_N``.  The ratio gate is only honest when evaluation
dominates: at smoke scale (200 objects) the in-process batch answers in
~0.5 ms, so the fixed localhost round trip alone would triple the "ratio"
and the gate would measure the L2 kernel's speed, not the codec.  Same
reasoning as the LA absolute-overhead gate in bench_http_throughput.py,
resolved the other way: here we grow the baseline instead of switching to
an absolute budget, because the 1.2x bound *is* the acceptance criterion
for the binary path.

Noise note: each gated ratio is the minimum over ``TRIALS`` independent
measurements (each itself best-of-``REPEATS`` passes).  Timing noise on
shared CI runners is one-sided -- scheduler delays only ever inflate a
measurement -- so the minimum is the best estimate of the true cost and
keeps the gate from flapping.  Exactness is asserted inside
``run_http_comparison`` before anything is timed, every trial.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import CostCounters, load_index, save_index, snapshot_info
from repro.bench import build_all, default_workloads, format_table
from repro.bench.runner import run_http_comparison

from _bench_common import N_QUERIES, emit

WIRE_COLOR_N = int(os.environ.get("REPRO_WIRE_COLOR_N", "6000"))

SELECTIVITY = 0.16
K = 10
BATCH_COPIES = 8
REPEATS = 7
TRIALS = 3
MAX_BINARY_RATIO = 1.2  # the tentpole's acceptance bound for the fast path
MAX_RESTORE_RATIO = 0.25  # v2 memmap restore vs v1 full-pickle restore
RESTORE_REPEATS = 7


@pytest.fixture(scope="module")
def color_workload():
    return default_workloads(
        n=WIRE_COLOR_N, color_n=WIRE_COLOR_N, n_queries=max(6, N_QUERIES)
    )["Color"]


@pytest.fixture(scope="module")
def color_laesa(color_workload):
    return build_all(color_workload, ("LAESA",))["LAESA"].index


def _min_ratio_row(rows: list[dict]) -> dict:
    """Element-wise minimum of the timing columns across trial rows."""
    best = dict(rows[0])
    for row in rows[1:]:
        for key, value in row.items():
            if key.endswith(("ms", "ratio")):
                best[key] = min(best[key], value)
    return best


def test_binary_wire_ratio(color_workload, color_laesa):
    radius = color_workload.radius_for(SELECTIVITY)
    trials = [
        run_http_comparison(
            color_laesa,
            color_workload.queries,
            radius,
            K,
            repeats=REPEATS,
            batch_copies=BATCH_COPIES,
            codec="binary",
        )
        for _ in range(TRIALS)
    ]
    binary = _min_ratio_row(trials)
    json_row = run_http_comparison(
        color_laesa,
        color_workload.queries,
        radius,
        K,
        repeats=3,
        batch_copies=BATCH_COPIES,
        codec="json",
    )
    emit(
        "wire_codec",
        format_table(
            [json_row, binary],
            title=(
                f"Color (n={WIRE_COLOR_N}) batch endpoints: "
                "JSON vs binary wire vs in-process"
            ),
            first_column="codec",
        ),
    )
    assert binary["MRQ ratio"] <= MAX_BINARY_RATIO, binary
    assert binary["kNN ratio"] <= MAX_BINARY_RATIO, binary


def _best_restore_seconds(path) -> float:
    best = float("inf")
    for _ in range(RESTORE_REPEATS):
        start = time.perf_counter()
        load_index(path)
        best = min(best, time.perf_counter() - start)
    return best


def test_memmap_restore_ratio(color_workload, color_laesa, tmp_path, benchmark):
    radius = color_workload.radius_for(SELECTIVITY)
    queries = list(color_workload.queries)
    expected_range = color_laesa.range_query_many(queries, radius)
    expected_knn = color_laesa.knn_query_many(queries, K)

    v1_path = tmp_path / "color.v1.snap"
    v2_path = tmp_path / "color.v2.snap"
    v1_info = save_index(color_laesa, v1_path, format_version=1)
    v2_info = save_index(color_laesa, v2_path, format_version=2)
    assert v2_info.n_regions > 0, "largest bench snapshot grew no regions"

    # the restored index must answer identically without recomputing a
    # single distance -- the memmap regions *are* the precomputed tables
    restore_counters = CostCounters()
    restored = load_index(v2_path, counters=restore_counters)
    assert restore_counters.distance_computations == 0
    assert restored.range_query_many(queries, radius) == expected_range
    assert restored.knn_query_many(queries, K) == expected_knn
    v1_restored = load_index(v1_path)
    assert v1_restored.range_query_many(queries, radius) == expected_range

    v1_seconds = _best_restore_seconds(v1_path)
    v2_seconds = _best_restore_seconds(v2_path)
    ratio = v2_seconds / v1_seconds
    rows = [
        {
            "Format": "v1 (pickle)",
            "File KiB": round(os.path.getsize(v1_path) / 1024, 1),
            "Pickle KiB": round(v1_info.payload_bytes / 1024, 1),
            "Region KiB": round(v1_info.region_bytes / 1024, 1),
            "Regions": v1_info.n_regions,
            "Restore ms": round(v1_seconds * 1000.0, 2),
            "vs v1": 1.0,
        },
        {
            "Format": "v2 (memmap)",
            "File KiB": round(os.path.getsize(v2_path) / 1024, 1),
            "Pickle KiB": round(v2_info.payload_bytes / 1024, 1),
            "Region KiB": round(v2_info.region_bytes / 1024, 1),
            "Regions": v2_info.n_regions,
            "Restore ms": round(v2_seconds * 1000.0, 2),
            "vs v1": round(ratio, 3),
        },
    ]
    emit(
        "snapshot_restore",
        format_table(
            rows,
            title=f"Snapshot restore: v1 pickle vs v2 memmap (Color LAESA, n={WIRE_COLOR_N})",
            first_column="Format",
        ),
    )
    assert snapshot_info(v2_path).format_version == 2
    assert ratio <= MAX_RESTORE_RATIO, rows
    benchmark(load_index, v2_path)
