"""Telemetry overhead gate: observability on must keep >= 95% throughput.

The observability subsystem (``repro.obs``) is sold as cheap enough to
leave on in production: histogram observations are a bisect + two integer
adds under a lock, trace spans are plain objects behind one
``ContextVar`` lookup, and batch cost attribution is two counter
snapshots per batch.  This bench holds that claim to a number:

* **telemetry fully on** -- a shared :class:`MetricsRegistry` wired
  through service, cache and dispatcher instruments, plus a per-request
  trace (``start_trace`` -> span tree -> ``to_dict`` -> ``json.dumps``,
  i.e. the entire slow-query-line envelope) around every query --
* must sustain at least ``MIN_THROUGHPUT_RATIO`` (0.95x) of the
  **telemetry off** throughput (no registry, no trace: every hook is on
  its no-op fast path) on the same Color LAESA workload of single MRQs
  plus one batched MkNNQ call.

Scale note: like bench_wire_codec.py, this bench pins its own Color
cardinality (``REPRO_TELEMETRY_COLOR_N``, default 4000) instead of
following ``REPRO_BENCH_COLOR_N``.  The per-query telemetry envelope is
a fixed few tens of microseconds; the gate is only honest when query
evaluation dominates it.  At smoke scale (200 objects) a range query
answers in ~0.1 ms and the ratio would measure the envelope against
nothing, flapping on scheduler noise.

Noise note: on shared CI runners the CPU's effective speed wanders by
several percent over seconds, so timing the two modes in separate loops
measures the drift, not the overhead.  Instead the gate times ``PAIRS``
back-to-back (off, on) pass pairs -- adjacent runs share one frequency
window, so each pair's ratio cancels the drift -- alternates which mode
goes first (the second of two identical workloads enjoys warmer caches,
and alternation cancels that position bias too), and gates the *median*
pair ratio, which a handful of noisy pairs cannot move.  Exactness
(telemetry must never change an answer) and the attribution invariant
(the traced batch cost equals the counters' measured delta) are
asserted before anything is timed.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro import QueryService
from repro.bench import build_all, default_workloads, format_table
from repro.obs import MetricsRegistry, tracing

from _bench_common import N_QUERIES, emit

TELEMETRY_COLOR_N = int(os.environ.get("REPRO_TELEMETRY_COLOR_N", "4000"))

SELECTIVITY = 0.16
K = 10
WARMUP = 2
PAIRS = 64
MIN_THROUGHPUT_RATIO = 0.95  # the tentpole's acceptance bound


@pytest.fixture(scope="module")
def color_workload():
    return default_workloads(
        n=TELEMETRY_COLOR_N, color_n=TELEMETRY_COLOR_N, n_queries=max(6, N_QUERIES)
    )["Color"]


@pytest.fixture(scope="module")
def color_laesa(color_workload):
    return build_all(color_workload, ("LAESA",))["LAESA"].index


def _one_pass_seconds(run) -> float:
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


def _plain_pass(service, queries, radius):
    for q in queries:
        service.range_query(q, radius)
    service.knn_query_many(queries, K)


def _traced_pass(service, queries, radius):
    """One pass paying the full per-request envelope the HTTP layer pays:
    a root span per request, batch cost attribution inside, and the
    slow-query line's span-tree serialisation after."""
    for q in queries:
        with tracing.start_trace("request", method="POST", path="/range") as root:
            service.range_query(q, radius)
        json.dumps(root.to_dict())
    with tracing.start_trace("request", method="POST", path="/knn_batch") as root:
        service.knn_query_many(queries, K)
    json.dumps(root.to_dict())


def _batch_cost(node: dict) -> int:
    if node["name"] == "batch_execute":
        return node["cost"].get("distance_computations", 0)
    return sum(_batch_cost(child) for child in node.get("spans", ()))


def test_telemetry_overhead_ratio(color_workload, color_laesa):
    radius = color_workload.radius_for(SELECTIVITY)
    queries = list(color_workload.queries)

    # both modes serve the same index; cache off + no dispatcher thread so
    # every pass re-evaluates and the timing has no coalescing-wait noise
    service_kw = dict(cache_size=0, use_dispatcher=False)
    off = QueryService(color_laesa, **service_kw)
    on = QueryService(color_laesa, metrics=MetricsRegistry(), **service_kw)

    # telemetry must never change an answer
    expected_range = color_laesa.range_query_many(queries, radius)
    expected_knn = color_laesa.knn_query_many(queries, K)
    assert [off.range_query(q, radius) for q in queries] == expected_range
    with tracing.start_trace("request") as root:
        assert [on.range_query(q, radius) for q in queries] == expected_range
        assert on.knn_query_many(queries, K) == expected_knn

    # ... and the attribution invariant holds on this very workload: one
    # traced request's batch cost equals the counters' measured delta
    before = on.counters.snapshot()
    with tracing.start_trace("request") as root:
        on.range_query(queries[0], radius)
    delta = on.counters.snapshot() - before
    assert delta.distance_computations > 0
    assert _batch_cost(root.to_dict()) == delta.distance_computations

    plain = lambda: _plain_pass(off, queries, radius)  # noqa: E731
    traced = lambda: _traced_pass(on, queries, radius)  # noqa: E731
    for _ in range(WARMUP):
        plain()
        traced()
    ratios = []
    best = {"off": float("inf"), "on": float("inf")}
    for i in range(PAIRS):
        if i % 2 == 0:
            t_off = _one_pass_seconds(plain)
            t_on = _one_pass_seconds(traced)
        else:
            t_on = _one_pass_seconds(traced)
            t_off = _one_pass_seconds(plain)
        ratios.append(t_off / t_on)
        best["off"] = min(best["off"], t_off)
        best["on"] = min(best["on"], t_on)
    ratio = statistics.median(ratios)  # throughput kept with telemetry on

    # guard against measuring an accidentally-disarmed hot path: the on
    # mode must actually have recorded per-kind batch executions
    batch_ms = on.metrics.get("repro_service_batch_execute_ms")
    assert batch_ms.labels("range").snapshot()[1] > 0
    assert batch_ms.labels("knn").snapshot()[1] > 0

    rows = [
        {
            "Mode": "telemetry off",
            "Best pass ms": round(best["off"] * 1000.0, 3),
            "Throughput kept": 1.0,
        },
        {
            "Mode": "telemetry on (metrics + traces)",
            "Best pass ms": round(best["on"] * 1000.0, 3),
            "Throughput kept": round(ratio, 4),
        },
    ]
    emit(
        "telemetry_overhead",
        format_table(
            rows,
            title=(
                f"Telemetry overhead: Color LAESA (n={TELEMETRY_COLOR_N}), "
                f"{len(queries)} MRQs + 1 batched MkNNQ per pass"
            ),
            first_column="Mode",
        ),
    )
    assert ratio >= MIN_THROUGHPUT_RATIO, rows
