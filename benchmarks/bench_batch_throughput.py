"""Batch execution layer: vectorized multi-query vs sequential throughput.

Not a paper experiment -- this guards the repo's own batch query layer: the
batch-capable indexes must answer a whole MRQ/MkNNQ workload measurably
faster through ``range_query_many`` / ``knn_query_many`` than through the
one-query-at-a-time loop, while returning bit-for-bit identical answers
(exactness is asserted inside :func:`repro.bench.run_batch_comparison`).

The speedup floor is asserted on LAESA over LA/Synthetic (pure in-memory
pivot filtering, where vectorization is the whole story); the tree
category has its own gate in ``bench_tree_batch_throughput.py``.  CPT's
MRQ wall clock is fetch-bound; its batch win is page accesses (leaf-
grouped fetching), gated on counters in the tree bench, so it is reported
but not wall-clock-gated here.
"""

from __future__ import annotations

import pytest

from repro.bench import exp_batch_throughput, format_table

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

GATED = ("LA", "Synthetic")
# floors are deliberately below the locally measured speedups (MRQ 4.8-9x,
# kNN 2.4-5x): this is a wall-clock gate that must also hold on noisy
# shared CI runners, so it only catches real regressions, not jitter
MIN_MRQ_SPEEDUP = 2.0
MIN_KNN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def batch_rows(workloads, built_indexes):
    subset = {name: workloads[name] for name in GATED}
    built = {name: built_indexes(name) for name in GATED}
    return exp_batch_throughput(subset, built=built)


def test_batch_throughput(batch_rows, benchmark, workloads, built_indexes):
    emit(
        "batch_throughput",
        format_table(
            batch_rows,
            title="Batch layer: sequential vs vectorized multi-query q/s",
            first_column="Dataset",
        ),
    )
    laesa = [r for r in batch_rows if r["Index"] == "LAESA"]
    assert laesa, "LAESA rows missing from batch throughput experiment"
    for row in laesa:
        assert row["MRQ speedup"] >= MIN_MRQ_SPEEDUP, row
        assert row["kNN speedup"] >= MIN_KNN_SPEEDUP, row
    workload = workloads["LA"]
    radius = workload.radius_for(0.16)
    index = built_indexes("LA")["LAESA"].index
    benchmark(index.range_query_many, workload.queries, radius)
