"""Shared benchmark fixtures and helpers.

Deliberately *not* named ``conftest.py``: a second top-level ``conftest``
module used to shadow ``tests/conftest.py`` (both imported under the bare
module name ``conftest``), breaking the unit suite.  Bench modules import
the fixtures explicitly: ``from _bench_common import emit, workloads, ...``.

Scale knobs (environment variables):

* ``REPRO_BENCH_N``       dataset cardinality (default 2000)
* ``REPRO_BENCH_COLOR_N`` Color cardinality (default N/2; 282-dim is heavy)
* ``REPRO_BENCH_QUERIES`` queries per measurement (default 8)

Every bench prints its paper-style table to stdout (run pytest with ``-s``
to see them live) and writes it to ``benchmarks/results/``; the
``run_experiments.py`` driver assembles EXPERIMENTS.md from the same
experiment functions at a larger scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import DEFAULT_INDEX_NAMES, build_all, default_workloads

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
COLOR_N = int(os.environ.get("REPRO_BENCH_COLOR_N", str(max(400, BENCH_N // 2))))
N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "8"))

RESULTS_DIR = Path(__file__).parent / "results"

# Because the fixtures below are *imported* into each bench module, pytest
# creates one FixtureDef per module and would re-instantiate them per
# module despite session scope.  The caches therefore live at module level
# in _bench_common (imported exactly once per pytest run), so workloads and
# built indexes are genuinely shared across all bench files.
_WORKLOADS_CACHE: dict | None = None
_BUILT_CACHE: dict[str, dict] = {}


def _session_workloads() -> dict:
    global _WORKLOADS_CACHE
    if _WORKLOADS_CACHE is None:
        _WORKLOADS_CACHE = default_workloads(
            n=BENCH_N, color_n=COLOR_N, n_queries=N_QUERIES
        )
    return _WORKLOADS_CACHE


@pytest.fixture(scope="session")
def workloads():
    return _session_workloads()


@pytest.fixture(scope="session")
def built_indexes(workloads):
    """All study indexes built once per dataset (lazy per workload)."""

    def get(workload_name: str) -> dict:
        if workload_name not in _BUILT_CACHE:
            _BUILT_CACHE[workload_name] = build_all(
                workloads[workload_name], DEFAULT_INDEX_NAMES
            )
        return _BUILT_CACHE[workload_name]

    return get


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
