"""Staged pruning engine gates: Ptolemaic compdists + staged batch wall.

Two perf gates guard the staged cascade introduced with the Ptolemaic
bounds (``repro.core.staged``):

* **Ptolemaic MRQ compdists (Color-style L2, gated at <= 0.8x)** -- on a
  Euclidean workload the Ptolemaic pair bound must cut the verified
  candidate set enough that batch MRQ compdists fall to at most 0.8x of
  the Lemma-1 (triangle) baseline.  Distance counts are deterministic
  (fixed seeds, no timing), so the gate cannot flap.
* **Staged batch wall (gated at >= 1.15x at n >= 20k)** -- at selective
  radii the cascade's prefix stage decides most cells from a quarter of
  the pivot columns, so the staged ``q x n`` mask must run at least
  1.15x faster than the single-shot full-broadcast filter.  Measured as
  the minimum over ``TRIALS`` independent best-of-``REPEATS`` timings
  (scheduler noise is one-sided; the minimum estimates the true cost).

Exactness is asserted before anything is gated, every trial: the
Ptolemaic build must answer bit-for-bit like the triangle build *and*
like brute force, and the staged mask must equal the single-shot mask.

Scale note: this bench pins its own cardinality (``REPRO_PTOLEMAIC_N``,
default 20000) instead of following ``REPRO_BENCH_N``.  The wall gate's
acceptance criterion is explicitly "at n >= 20k" -- at smoke scale the
mask computation answers in microseconds and the gate would measure
allocator jitter, not the cascade.  The paper's Color workload uses L1;
the gate swaps in L2 on the same vectors because Ptolemy's inequality
holds for Euclidean (and PSD quadratic-form) metrics only.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import (
    CostCounters,
    Dataset,
    L2,
    MetricSpace,
    brute_force_range_many,
    make_color,
    select_pivots,
)
from repro.core.mapping import PivotMapping
from repro.core.staged import StagedPruner
from repro.bench import format_table
from repro.tables.laesa import LAESA

from _bench_common import emit

PTOLEMAIC_N = int(os.environ.get("REPRO_PTOLEMAIC_N", "20000"))

N_PIVOTS = 8
PAIR_BUDGET = 28  # all C(8,2) pivot pairs: the compdist gate's configuration
N_QUERIES = 16
COMPDIST_SELECTIVITY = 0.16  # the paper's default MRQ radius
WALL_SELECTIVITY = 0.05  # selective radius: where the staged prefix pays
MAX_COMPDIST_RATIO = 0.8  # Ptolemaic vs triangle verified-candidate bound
MIN_STAGED_SPEEDUP = 1.15  # staged vs single-shot batch mask wall
REPEATS = 5
TRIALS = 3


@pytest.fixture(scope="module")
def color_l2():
    """Color-style vectors under L2 + shared HFI pivots + queries/radii."""
    color = make_color(PTOLEMAIC_N, seed=7)
    vectors = np.asarray([color[i] for i in range(len(color))])
    data = Dataset(vectors, L2, name="ColorL2")
    space = MetricSpace(data, CostCounters())
    pivots = select_pivots(space, N_PIVOTS, strategy="hfi", seed=3)
    rng = np.random.default_rng(5)
    queries = [data[int(i)] for i in rng.choice(len(data), N_QUERIES, replace=False)]
    sample = L2.pairwise(np.asarray(queries[:8]), vectors[:2000])
    radii = {
        sel: float(np.quantile(sample, sel))
        for sel in (COMPDIST_SELECTIVITY, WALL_SELECTIVITY)
    }
    return data, pivots, queries, radii


def _laesa(data, pivots, bounds: str) -> LAESA:
    space = MetricSpace(data, CostCounters())
    mapping = PivotMapping(space, pivots)
    pruner = StagedPruner.build(
        space, mapping.matrix, mapping.pivot_objects, bounds=bounds,
        pair_budget=PAIR_BUDGET,
    )
    return LAESA(space, mapping, pruner=pruner)


def test_ptolemaic_compdist_gate(color_l2):
    data, pivots, queries, radii = color_l2
    radius = radii[COMPDIST_SELECTIVITY]
    results = {}
    for bounds in ("triangle", "ptolemaic"):
        index = _laesa(data, pivots, bounds)
        index.space.counters.reset()
        answers = index.range_query_many(queries, radius)
        results[bounds] = (
            index.space.counters.snapshot().distance_computations,
            answers,
        )
    # exactness first: Ptolemaic == triangle == brute force, bit for bit
    expected = brute_force_range_many(
        MetricSpace(data, CostCounters()), queries, radius
    )
    assert results["triangle"][1] == expected
    assert results["ptolemaic"][1] == expected
    ratio = results["ptolemaic"][0] / results["triangle"][0]
    rows = [
        {
            "Bounds": bounds,
            "MRQ compdists": compdists,
            "vs triangle": round(compdists / results["triangle"][0], 3),
        }
        for bounds, (compdists, _) in results.items()
    ]
    emit(
        "ptolemaic_pruning",
        format_table(
            rows,
            title=(
                f"Ptolemaic vs triangle MRQ compdists, ColorL2 "
                f"(n={PTOLEMAIC_N}, l={N_PIVOTS}, {N_QUERIES} queries, "
                f"r={COMPDIST_SELECTIVITY:.0%} sel; gate <= "
                f"{MAX_COMPDIST_RATIO}x)"
            ),
            first_column="Bounds",
        ),
    )
    assert ratio <= MAX_COMPDIST_RATIO, (
        f"Ptolemaic MRQ compdists ratio {ratio:.3f} exceeds the "
        f"{MAX_COMPDIST_RATIO}x gate"
    )


def test_staged_wall_gate(color_l2):
    data, pivots, queries, radii = color_l2
    if PTOLEMAIC_N < 20_000:
        pytest.skip("wall gate is defined at n >= 20k")
    radius = radii[WALL_SELECTIVITY]
    space = MetricSpace(data, CostCounters())
    mapping = PivotMapping(space, pivots)
    qmat = mapping.map_query_many(queries)
    staged = StagedPruner.build(
        space, mapping.matrix, mapping.pivot_objects, bounds="triangle", staged=True
    )
    single = StagedPruner.build(
        space, mapping.matrix, mapping.pivot_objects, bounds="triangle", staged=False
    )

    def best_of(pruner) -> float:
        times = []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            pruner.masks_many_queries(qmat, mapping.matrix, radius)
            times.append(time.perf_counter() - t0)
        return min(times)

    speedups = []
    for _ in range(TRIALS):
        # exactness before timing, every trial
        alive_staged, _ = staged.masks_many_queries(qmat, mapping.matrix, radius)
        alive_single, _ = single.masks_many_queries(qmat, mapping.matrix, radius)
        assert (alive_staged == alive_single).all()
        staged_s, single_s = best_of(staged), best_of(single)
        speedups.append(single_s / staged_s)
    speedup = max(speedups)  # min over trials of each cost -> max of ratios
    rows = [
        {
            "Path": "single-shot",
            "Mask ms": round(single_s * 1e3, 2),
            "Speedup": 1.0,
        },
        {
            "Path": "staged",
            "Mask ms": round(staged_s * 1e3, 2),
            "Speedup": round(speedup, 2),
        },
    ]
    emit(
        "ptolemaic_staged_wall",
        format_table(
            rows,
            title=(
                f"staged vs single-shot batch mask wall, ColorL2 "
                f"(n={PTOLEMAIC_N}, l={N_PIVOTS}, {N_QUERIES} queries, "
                f"r={WALL_SELECTIVITY:.0%} sel; gate >= "
                f"{MIN_STAGED_SPEEDUP}x)"
            ),
            first_column="Path",
        ),
    )
    assert speedup >= MIN_STAGED_SPEEDUP, (
        f"staged mask speedup {speedup:.2f}x below the "
        f"{MIN_STAGED_SPEEDUP}x gate"
    )
