"""Planner routing gate: cost-routed traffic vs worst member and oracle.

Not a paper experiment -- this guards the catalog -> planner -> executor
serving stack.  A catalog hosting {LAESA, MVPT, M-index*} over the Color
workload serves a mixed-radius MRQ stream (small / medium / large radii,
where the paper shows the cheapest index flips).  The gate:

* **exactness** -- routed answers are bit-for-bit equal to brute force
  and to every member's own answers, at every radius;
* **throughput floor** -- the routed service must finish the stream at
  least ``MIN_SPEEDUP_VS_WORST`` x faster than the slowest member forced
  to serve everything (a planner that routes is pointless if hardwiring
  any one index would do as well), and within ``MIN_FRACTION_OF_ORACLE``
  of the measured per-radius oracle (pick the cheapest member for each
  batch with hindsight).

Every strategy -- pinned single member, oracle, routed -- is measured
through the same :class:`QueryService` call path (``index=`` pins a
member, no pin routes), so the gate compares routing decisions, not
service-wrapper overhead.  The planner calibrates on the same radii
untimed -- seed-time work, not serving work.  Timings are best-of-
``REPEATS`` so one scheduler hiccup cannot flap the gate.
"""

from __future__ import annotations

import time

from repro import CostCounters, MetricSpace, brute_force_range_many
from repro.bench import format_table, measure_build, shared_pivots
from repro.service import IndexCatalog, QueryService

from _bench_common import emit, workloads  # noqa: F401  (fixture)

MEMBERS = ("LAESA", "MVPT", "M-index*")
SELECTIVITIES = (0.04, 0.16, 0.64)
REPEATS = 3
MIN_SPEEDUP_VS_WORST = 1.2
MIN_FRACTION_OF_ORACLE = 0.8


def _best_seconds(run, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def test_planner_routing_beats_worst_member(workloads):
    workload = workloads["Color"]
    queries = workload.queries
    radii = [workload.radius_for(s) for s in SELECTIVITIES]
    pivots = shared_pivots(workload, 5)

    catalog = IndexCatalog()
    for name in MEMBERS:
        # measure_build constructs each member on its own fresh MetricSpace
        # over the same dataset -- the catalog's attribution requirement
        catalog.register(measure_build(name, workload, pivots).index)

    # -- exactness: every member == brute force at every radius -------------
    ref_space = MetricSpace(workload.dataset, CostCounters())
    golden = {r: brute_force_range_many(ref_space, queries, r) for r in radii}
    for member in catalog.members():
        for r in radii:
            assert member.index.range_query_many(queries, r) == golden[r], (
                member.index_id,
                r,
            )

    with QueryService(
        catalog=catalog, cache_size=0, use_dispatcher=False, planner_epsilon=0.0
    ) as service:
        service.planner.calibrate(radii=radii, n_queries=len(queries))

        # -- member timings: the same service path, pinned per member -------
        member_seconds: dict[str, dict[float, float]] = {}
        for member_id in catalog.ids():
            per_radius = {}
            for r in radii:
                assert (
                    service.range_query_many(queries, r, index=member_id)
                    == golden[r]
                )
                per_radius[r] = _best_seconds(
                    lambda mid=member_id, rr=r: service.range_query_many(
                        queries, rr, index=mid
                    )
                )
            member_seconds[member_id] = per_radius
        worst_s = max(sum(per.values()) for per in member_seconds.values())
        best_single_s = min(sum(per.values()) for per in member_seconds.values())
        # hindsight oracle: the cheapest member for each radius batch
        oracle_s = sum(
            min(member_seconds[m][r] for m in member_seconds) for r in radii
        )

        # -- routed serving: the same stream, planner picks the member ------
        for r in radii:  # exactness through the routed service itself
            assert service.range_query_many(queries, r) == golden[r]
        routed_s = _best_seconds(
            lambda: [service.range_query_many(queries, r) for r in radii]
        )
        routes = {
            r: service.planner.route("range", r, len(queries)) for r in radii
        }
        planner_stats = service.planner.stats()

    rows = []
    for member_id, per in member_seconds.items():
        rows.append(
            {
                "Strategy": f"always {member_id}",
                "seconds": round(sum(per.values()), 4),
                "vs worst": round(worst_s / sum(per.values()), 2),
            }
        )
    rows.append(
        {
            "Strategy": "oracle (per-radius best)",
            "seconds": round(oracle_s, 4),
            "vs worst": round(worst_s / oracle_s, 2),
        }
    )
    rows.append(
        {
            "Strategy": "planner-routed",
            "seconds": round(routed_s, 4),
            "vs worst": round(worst_s / routed_s, 2),
        }
    )
    table = format_table(
        rows,
        title=(
            "Planner routing on Color, mixed radii "
            f"{[round(r, 1) for r in radii]} "
            f"(routes: {[routes[r] for r in radii]}, "
            f"mispredict ratio {planner_stats['mispredict_ratio']})"
        ),
        first_column="Strategy",
    )
    emit("planner_routing", table)

    assert routed_s * MIN_SPEEDUP_VS_WORST <= worst_s, (
        f"routed {routed_s:.4f}s must be >= {MIN_SPEEDUP_VS_WORST}x faster "
        f"than the worst single member ({worst_s:.4f}s)\n{table}"
    )
    assert routed_s * MIN_FRACTION_OF_ORACLE <= oracle_s, (
        f"routed {routed_s:.4f}s must reach {MIN_FRACTION_OF_ORACLE:.0%} of "
        f"oracle throughput ({oracle_s:.4f}s)\n{table}"
    )
    # sanity: the oracle can never lose to the best fixed member
    assert oracle_s <= best_single_s + 1e-9
