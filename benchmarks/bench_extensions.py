"""Benches for the paper's future-work directions (Section 7), implemented.

* **DEPT** -- "extension of EPT(*) to a disk-based metric index with a low
  construction cost": check it builds far cheaper than EPT* while keeping
  competitive query compdists on disk.
* **Compact partitioning comparison** -- "comparisons between pivot-based
  metric indexes and compact partitioning metric indexes": M-tree (compact)
  vs the pivot-based disk indexes; expectation from the paper's citation
  [2]: pivot-based methods compute fewer distances.
* **Sharded construction** -- Section 6.2's parallelisable partitioned
  build: per-shard builds must cost the same total compdists while queries
  stay exact.
"""

from __future__ import annotations

import pytest

from repro import MVPT, MetricSpace, ShardedIndex, select_pivots
from repro.bench import (
    format_table,
    measure_build,
    run_knn_queries,
    run_range_queries,
    shared_pivots,
)

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)


@pytest.fixture(scope="module")
def dept_rows(workloads):
    rows = []
    for wl_name in ("LA", "Words"):
        workload = workloads[wl_name]
        pivots = shared_pivots(workload, 5)
        for name in ("EPT*", "DEPT"):
            build = measure_build(name, workload, pivots)
            cost = run_knn_queries(build.index, workload.queries, 20)
            rows.append(
                {
                    "Dataset": wl_name,
                    "Index": name,
                    "Build comp": build.compdists,
                    "Build s": round(build.seconds, 3),
                    "kNN comp": round(cost.compdists, 1),
                    "kNN PA": round(cost.page_accesses, 1),
                    "Disk (KB)": round(build.disk_bytes / 1024, 1),
                }
            )
    return rows


def test_extension_dept(dept_rows, benchmark, workloads):
    emit(
        "extension_dept",
        format_table(
            dept_rows,
            title="Extension: DEPT (disk EPT* with cheap construction)",
            first_column="Dataset",
        ),
    )
    by = {(r["Dataset"], r["Index"]): r for r in dept_rows}
    for wl_name in ("LA", "Words"):
        # the future-work goal: construction far below EPT*'s
        assert (
            by[(wl_name, "DEPT")]["Build comp"]
            < by[(wl_name, "EPT*")]["Build comp"] / 2
        )
        # disk-resident
        assert by[(wl_name, "DEPT")]["Disk (KB)"] > 0
        # queries within a reasonable factor of EPT* verifications
        assert (
            by[(wl_name, "DEPT")]["kNN comp"]
            <= by[(wl_name, "EPT*")]["kNN comp"] * 3
        )
    workload = workloads["Words"]
    pivots = shared_pivots(workload, 5)
    benchmark.pedantic(
        lambda: measure_build("DEPT", workload, pivots), rounds=1, iterations=1
    )


@pytest.fixture(scope="module")
def compact_rows(workloads):
    rows = []
    for wl_name in ("LA", "Words"):
        workload = workloads[wl_name]
        pivots = shared_pivots(workload, 5)
        radius = workload.radius_for(0.16)
        for name in ("M-tree", "SPB-tree", "M-index*", "PM-tree"):
            build = measure_build(name, workload, pivots)
            cost = run_range_queries(build.index, workload.queries, radius)
            rows.append(
                {
                    "Dataset": wl_name,
                    "Index": name,
                    "Kind": "compact" if name == "M-tree" else "pivot-based",
                    "MRQ comp": round(cost.compdists, 1),
                    "MRQ PA": round(cost.page_accesses, 1),
                }
            )
    return rows


def test_extension_compact_partitioning(compact_rows, benchmark, workloads):
    emit(
        "extension_compact",
        format_table(
            compact_rows,
            title="Extension: compact partitioning (M-tree) vs pivot-based",
            first_column="Dataset",
        ),
    )
    by = {(r["Dataset"], r["Index"]): r for r in compact_rows}
    # the paper's premise [2]: pivot-based beats compact partitioning on
    # distance computations
    for wl_name in ("LA", "Words"):
        mtree = by[(wl_name, "M-tree")]["MRQ comp"]
        assert by[(wl_name, "SPB-tree")]["MRQ comp"] <= mtree
        assert by[(wl_name, "M-index*")]["MRQ comp"] <= mtree
    workload = workloads["LA"]
    pivots = shared_pivots(workload, 5)
    benchmark.pedantic(
        lambda: measure_build("M-tree", workload, pivots), rounds=1, iterations=1
    )


def test_extension_sharded_build(workloads, benchmark):
    workload = workloads["LA"]
    dataset = workload.dataset
    space = MetricSpace(dataset)

    def build_shard(shard_space):
        pivots = select_pivots(shard_space, 4, strategy="hfi", seed=1)
        return MVPT.build(shard_space, pivots)

    sharded = ShardedIndex.build(space, build_shard, n_shards=4, seed=0)
    radius = workload.radius_for(0.16)
    from repro import brute_force_range

    reference = MetricSpace(dataset)
    for q in workload.queries[:4]:
        assert sharded.range_query(q, radius) == brute_force_range(
            reference, q, radius
        )
        ks = [n.distance for n in sharded.knn_query(q, 10)]
        want = [n.distance for n in __import__("repro").brute_force_knn(reference, q, 10)]
        assert [round(a, 6) for a in ks] == [round(b, 6) for b in want]
    emit(
        "extension_sharded",
        "Extension: sharded (parallelisable) construction -- 4 shards of "
        f"{len(dataset)} LA points answer MRQ/MkNNQ exactly "
        "(per-shard builds are independent and can run concurrently).",
    )
    benchmark(lambda: sharded.knn_query(workload.queries[0], 10))
