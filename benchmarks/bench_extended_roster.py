"""Extended roster: every index in the repository on one workload.

Beyond the paper's ten-index comparison, this bench runs the *entire*
implemented family -- including AESA (the paper's "theoretical" baseline),
VPT, FQA, the full Omni trio, the plain M-index, and the extensions (DEPT,
M-tree) -- on the Words workload, giving one table to sanity-check every
structure side by side.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    build_all,
    format_table,
    run_knn_queries,
    run_range_queries,
)

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

ROSTER = (
    "AESA",
    "LAESA",
    "EPT",
    "EPT*",
    "CPT",
    "BKT",
    "FQT",
    "FQA",
    "VPT",
    "MVPT",
    "PM-tree",
    "Omni-seq",
    "OmniB+",
    "OmniR-tree",
    "M-index",
    "M-index*",
    "SPB-tree",
    "DEPT",
    "M-tree",
)


@pytest.fixture(scope="module")
def roster(workloads):
    workload = workloads["Words"]
    built = build_all(workload, ROSTER)
    radius = workload.radius_for(0.16)
    rows = []
    for name, result in built.items():
        range_cost = run_range_queries(result.index, workload.queries, radius)
        knn_cost = run_knn_queries(result.index, workload.queries, 20)
        rows.append(
            {
                "Index": name,
                "Build comp": result.compdists,
                "Build PA": result.page_accesses,
                "MRQ comp": round(range_cost.compdists, 1),
                "MRQ PA": round(range_cost.page_accesses, 1),
                "kNN comp": round(knn_cost.compdists, 1),
                "kNN PA": round(knn_cost.page_accesses, 1),
            }
        )
    return rows, built


def test_extended_roster(roster, benchmark, workloads):
    rows, built = roster
    emit(
        "extended_roster",
        format_table(
            rows,
            title="Extended roster: all 19 indexes on Words (r=16%, k=20)",
            first_column="Index",
        ),
    )
    assert len(rows) == len(ROSTER)
    by = {r["Index"]: r for r in rows}
    # AESA: the compdists floor for kNN among table methods
    assert by["AESA"]["kNN comp"] <= by["LAESA"]["kNN comp"]
    # every pivot-based index should beat the compact-partitioning baseline
    # on kNN distance computations (the paper's premise)
    assert by["SPB-tree"]["kNN comp"] <= by["M-tree"]["kNN comp"]
    assert by["LAESA"]["kNN comp"] <= by["M-tree"]["kNN comp"]
    index = built["AESA"].index
    q = workloads["Words"].queries[0]
    benchmark(lambda: index.knn_query(q, 20))
