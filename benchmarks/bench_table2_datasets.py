"""Table 2: statistics of the (substituted) datasets.

Paper reference values: LA (n=1,073,727, dim 2, int.dim 5.4, MaxD 14000,
L2), Words (611,756, 1~34, 1.2, 34, edit), Color (1,000,000, 282, 6.5,
100000, L1), Synthetic (1,000,000, 20, 6.6, 10000, Linf).  Our substitutes
match dimensionality, distance domain and (except LA, see DESIGN.md) are
close on intrinsic dimension; cardinality is scaled down.
"""

from __future__ import annotations

from repro.bench import exp_table2_datasets, format_table
from repro.core.dataset import dataset_statistics

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)


def test_table2_dataset_statistics(workloads, benchmark):
    rows = exp_table2_datasets(workloads)
    emit(
        "table2_datasets",
        format_table(rows, title="Table 2: dataset statistics", first_column="Dataset"),
    )
    # sanity: the shape facts the paper relies on
    by_name = {row["Dataset"]: row for row in rows}
    assert by_name["Color"]["Dim."] == "282"
    assert by_name["Synthetic"]["Dis. Measure"] == "Linf"
    assert float(by_name["Words"]["Int. Dim."]) < float(
        by_name["Synthetic"]["Int. Dim."]
    )
    benchmark(dataset_statistics, workloads["LA"].dataset, 5000)
