"""Tree batch frontier engine + CPT leaf-grouped paging: regression gates.

Not a paper experiment -- this guards the repo's own tree batch layer:

* the tree family must answer a whole MRQ workload measurably faster
  through the shared batch frontier engine (``repro.trees.common``) than
  through the one-query-at-a-time loop, with bit-for-bit identical
  answers (asserted inside :func:`repro.bench.run_batch_comparison`).
  The wall-clock floor is asserted on MVPT (the paper's best tree) over
  LA and Synthetic;
* CPT's leaf-grouped batch verification must do *well* under half the
  sequential loop's page accesses on the same workloads.  That gate is
  on deterministic PA counters, not wall clock -- grouping either reads
  each touched M-tree leaf once per batch or it does not.

The batch sizes here are serving-shaped (16 queries -- the amortisation
the engine exists for), independent of the tiny REPRO_BENCH_QUERIES used
by the per-query paper benches.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    build_all,
    format_table,
    make_workload,
    run_batch_comparison,
    run_page_access_comparison,
)

from _bench_common import BENCH_N, emit  # noqa: F401

GATED = ("LA", "Synthetic")
N_QUERIES = int(os.environ.get("REPRO_TREE_BATCH_QUERIES", "16"))
# measured at n=600..2000: MVPT MRQ 3.2-4.2x, so 2.0 only trips on real
# regressions even on noisy shared CI runners
MIN_TREE_MRQ_SPEEDUP = 2.0
# measured 0.24 (LA) / 0.002 (Synthetic); counter-based, deterministic
MAX_CPT_PA_RATIO = 0.5


@pytest.fixture(scope="module")
def tree_workloads():
    return {name: make_workload(name, n=BENCH_N, n_queries=N_QUERIES) for name in GATED}


@pytest.fixture(scope="module")
def tree_built(tree_workloads):
    return {
        name: build_all(workload, ("MVPT", "CPT"))
        for name, workload in tree_workloads.items()
    }


def test_tree_batch_throughput(tree_workloads, tree_built, benchmark):
    rows = []
    for name, workload in tree_workloads.items():
        radius = workload.radius_for(0.16)
        row = run_batch_comparison(
            tree_built[name]["MVPT"].index, workload.queries, radius, 10, repeats=3
        )
        rows.append({"Dataset": name, **row})
    emit(
        "tree_batch_throughput",
        format_table(
            rows,
            title=f"Tree batch frontier engine: MVPT q/s, {N_QUERIES}-query batches",
            first_column="Dataset",
        ),
    )
    for row in rows:
        assert row["MRQ speedup"] >= MIN_TREE_MRQ_SPEEDUP, row
        assert row["kNN speedup"] >= 1.0, row  # batch must never lose
    workload = tree_workloads["LA"]
    index = tree_built["LA"]["MVPT"].index
    benchmark(index.range_query_many, workload.queries, workload.radius_for(0.16))


def test_cpt_leaf_grouped_page_accesses(tree_workloads, tree_built):
    rows = []
    for name, workload in tree_workloads.items():
        radius = workload.radius_for(0.16)
        row = run_page_access_comparison(
            tree_built[name]["CPT"].index, workload.queries, radius
        )
        rows.append({"Dataset": name, **row})
    emit(
        "cpt_leaf_grouped_paging",
        format_table(
            rows,
            title="CPT leaf-grouped batch verification: page accesses per batch",
            first_column="Dataset",
        ),
    )
    for row in rows:
        assert row["batch PA"] < MAX_CPT_PA_RATIO * row["seq PA"], row
        # the saved I/O must show up as grouped hits, not vanish
        assert row["grouped hits"] > 0, row
