"""Figure 18: MkNNQ performance vs the number of pivots |P| (LA, Synthetic).

Paper shapes: compdists drop monotonically as |P| grows (better filtering);
PA / CPU first drop, then flatten or rise (larger pre-computed tables);
M-index* absent at |P| = 1 (hyperplane partitioning needs two pivots).
"""

from __future__ import annotations

import pytest

from repro.bench import build_all, format_table, run_knn_queries

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

PIVOT_COUNTS = (1, 3, 5, 7, 9)
INDEXES = ("LAESA", "MVPT", "OmniR-tree", "M-index*", "SPB-tree")
K = 20


@pytest.fixture(scope="module")
def fig18(workloads):
    rows = []
    last_indexes = {}
    for wl_name in ("LA", "Synthetic"):
        workload = workloads[wl_name]
        for n_pivots in PIVOT_COUNTS:
            names = tuple(
                n for n in INDEXES if not (n == "M-index*" and n_pivots < 2)
            )
            indexes = build_all(workload, names, n_pivots=n_pivots)
            last_indexes = indexes
            for index_name, result in indexes.items():
                cost = run_knn_queries(result.index, workload.queries, K)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "|P|": n_pivots,
                        "Compdists": round(cost.compdists, 1),
                        "PA": round(cost.page_accesses, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows, last_indexes


def test_fig18_pivot_count(fig18, benchmark, workloads):
    rows, last_indexes = fig18
    emit(
        "fig18_pivots",
        format_table(rows, title="Figure 18: MkNNQ cost vs |P|", first_column="Dataset"),
    )
    by = {(r["Dataset"], r["Index"], r["|P|"]): r for r in rows}
    # compdists at |P|=9 should not exceed |P|=1 (more pivots filter better)
    for wl_name in ("LA", "Synthetic"):
        for index_name in ("LAESA", "MVPT", "SPB-tree"):
            assert (
                by[(wl_name, index_name, 9)]["Compdists"]
                <= by[(wl_name, index_name, 1)]["Compdists"] * 1.1
            )
    index = last_indexes["LAESA"].index
    q = workloads["Synthetic"].queries[0]
    benchmark(lambda: index.knn_query(q, K))
