#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: every table and figure of the paper, measured.

Usage::

    python benchmarks/run_experiments.py [--n 4000] [--color-n 1500]
                                         [--queries 10] [--out EXPERIMENTS.md]

Runs the same experiment functions as the pytest benches (repro.bench.
experiments) at a configurable scale and writes a Markdown report that sets
each measured table/figure beside the paper's qualitative claims.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench import (
    DEFAULT_INDEX_NAMES,
    default_workloads,
    exp_ablation_mvpt_arity,
    exp_ablation_pivot_selection,
    exp_ablation_sfc,
    exp_batch_throughput,
    exp_fig14_ept,
    exp_fig15_mindex,
    exp_fig16_range,
    exp_fig17_knn,
    exp_fig18_pivots,
    exp_table2_datasets,
    exp_table4_construction,
    exp_table5_ranking,
    exp_table6_updates,
    exp_table7_ranking,
    format_markdown,
    format_ranking,
)

PAPER_NOTES = {
    "table2": (
        "Paper: LA 1.07M/2-d/int.dim 5.4/L2; Words 612K/1-34/1.2/edit; Color "
        "1M/282-d/6.5/L1; Synthetic 1M/20-d/6.6/Linf.  Substitutes match "
        "dimensionality and distance domains; cardinality is scaled down.  "
        "LA's intrinsic dimension lands near 2 (natural ceiling for 2-d L2 "
        "point sets; see DESIGN.md section 2)."
    ),
    "table4": (
        "Paper shape: tables/trees build fastest; EPT* costliest (PSA); "
        "CPT/PM-tree pay M-tree construction compdists and the largest "
        "storage; SPB-tree has the lowest construction PA and smallest disk "
        "footprint among external indexes."
    ),
    "table6": (
        "Paper shape: trees update cheapest; EPT/EPT* pay per-object pivot "
        "re-selection (orders of magnitude more compdists); LAESA deletes by "
        "sequential scan (cheap in compdists, linear in time); SPB-tree and "
        "M-index* are the cheapest disk indexes."
    ),
    "fig14": (
        "Paper shape: EPT* <= EPT in compdists and CPU across k, bought with "
        "the much higher construction cost of Table 4."
    ),
    "fig15": (
        "Paper shape: M-index* beats M-index on PA and CPU for MkNNQ "
        "(single best-first traversal vs repeated range queries); compdists "
        "are similar."
    ),
    "fig16": (
        "Paper shape: cost grows with r; in-memory indexes have the lowest "
        "CPU; SPB-tree has the lowest PA; CPT/PM-tree the highest PA; "
        "pivot-based trees pay somewhat more compdists than tables."
    ),
    "fig17": (
        "Paper shape: cost grows with k; LAESA/CPT verify in storage order "
        "(extra compdists); SPB-tree keeps the lowest PA; in-memory indexes "
        "have the lowest CPU."
    ),
    "fig18": (
        "Paper shape: compdists fall monotonically with |P|; PA and CPU "
        "fall then flatten/rise as the stored tables grow; the useful |P| "
        "tracks the intrinsic dimensionality."
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4000, help="dataset cardinality")
    parser.add_argument("--color-n", type=int, default=1500, help="Color cardinality")
    parser.add_argument("--queries", type=int, default=10, help="queries per point")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "EXPERIMENTS.md",
    )
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    print(f"workloads: n={args.n}, color_n={args.color_n}, queries={args.queries}")
    workloads = default_workloads(
        n=args.n, color_n=args.color_n, n_queries=args.queries
    )

    sections: list[str] = []

    def section(title: str, note: str, body: str) -> None:
        sections.append(f"## {title}\n\n*{note}*\n\n{body}\n")
        print(f"[{time.perf_counter() - t_start:7.1f}s] {title} done")

    # Table 2 ---------------------------------------------------------------
    section(
        "Table 2 — dataset statistics",
        PAPER_NOTES["table2"],
        format_markdown(exp_table2_datasets(workloads), first_column="Dataset"),
    )

    # Table 4 + 5 ------------------------------------------------------------
    table4_rows, built = exp_table4_construction(workloads, DEFAULT_INDEX_NAMES)
    section(
        "Table 4 — construction costs and storage",
        PAPER_NOTES["table4"],
        format_markdown(table4_rows, first_column="Dataset"),
    )
    ranking_lines = [
        format_ranking(scores, metric)
        for metric, scores in exp_table5_ranking(table4_rows).items()
    ]
    section(
        "Table 5 — construction/storage ranking (lower total = better)",
        "Aggregated over the datasets above.",
        "```\n" + "\n".join(ranking_lines) + "\n```",
    )

    # Table 6 + 7 ------------------------------------------------------------
    table6_rows = exp_table6_updates(workloads, DEFAULT_INDEX_NAMES, built=built)
    section(
        "Table 6 — update costs (delete + reinsert)",
        PAPER_NOTES["table6"],
        format_markdown(table6_rows, first_column="Dataset"),
    )
    ranking_lines = [
        format_ranking(scores, metric)
        for metric, scores in exp_table7_ranking(table6_rows).items()
    ]
    section(
        "Table 7 — update-cost ranking",
        "Aggregated over the datasets above.",
        "```\n" + "\n".join(ranking_lines) + "\n```",
    )

    # Figures ----------------------------------------------------------------
    section(
        "Figure 14 — EPT vs EPT* (MkNNQ vs k)",
        PAPER_NOTES["fig14"],
        format_markdown(exp_fig14_ept(workloads), first_column="Dataset"),
    )
    section(
        "Figure 15 — M-index vs M-index* (MkNNQ vs k)",
        PAPER_NOTES["fig15"],
        format_markdown(exp_fig15_mindex(workloads), first_column="Dataset"),
    )
    section(
        "Figure 16 — MRQ cost vs radius",
        PAPER_NOTES["fig16"],
        format_markdown(
            exp_fig16_range(workloads, DEFAULT_INDEX_NAMES, built=built),
            first_column="Dataset",
        ),
    )
    section(
        "Figure 17 — MkNNQ cost vs k",
        PAPER_NOTES["fig17"],
        format_markdown(
            exp_fig17_knn(workloads, DEFAULT_INDEX_NAMES, built=built),
            first_column="Dataset",
        ),
    )
    fig18_workloads = {name: workloads[name] for name in ("LA", "Synthetic")}
    section(
        "Figure 18 — MkNNQ cost vs |P|",
        PAPER_NOTES["fig18"],
        format_markdown(
            exp_fig18_pivots(
                fig18_workloads,
                ("LAESA", "MVPT", "OmniR-tree", "M-index*", "SPB-tree"),
            ),
            first_column="Dataset",
        ),
    )

    # Batch execution layer ----------------------------------------------------
    batch_workloads = {name: workloads[name] for name in ("LA", "Synthetic")}
    section(
        "Batch query layer — sequential vs vectorized multi-query throughput",
        "Repo extension (no paper counterpart): the table indexes answer "
        "whole query batches through one query-pivot distance matrix and 2-D "
        "Lemma 1/4 filtering; answers are asserted identical to the "
        "sequential loop.  CPT MRQ stays at parity by design (verification "
        "is page-fetch-bound).",
        format_markdown(
            exp_batch_throughput(batch_workloads, built=built),
            first_column="Dataset",
        ),
    )

    # Ablations ----------------------------------------------------------------
    section(
        "Ablation — pivot selection strategy",
        "Why the study fixes one strategy (HFI): LAESA MRQ on LA per strategy.",
        format_markdown(exp_ablation_pivot_selection(workloads["LA"])),
    )
    section(
        "Ablation — MVPT arity",
        "Section 4.3: pruning improves then degrades with m.",
        format_markdown(exp_ablation_mvpt_arity(workloads["Words"])),
    )
    section(
        "Ablation — SPB-tree space-filling curve",
        "Section 5.4: Hilbert locality vs Z-order.",
        format_markdown(exp_ablation_sfc(workloads["LA"])),
    )

    elapsed = time.perf_counter() - t_start
    header = (
        "# EXPERIMENTS — paper vs measured\n\n"
        "Reproduction of every table and figure in Section 6 of *Pivot-based "
        "Metric Indexing* (Chen et al., PVLDB 10(10), 2017), measured on the "
        "substituted workloads described in DESIGN.md.\n\n"
        f"Scale: n = {args.n} per dataset (Color: {args.color_n}), "
        f"{args.queries} queries per data point, |P| = 5 pivots (HFI), "
        "page size 4 KB (40 KB for CPT/PM-tree on Color/Synthetic), "
        "128 KB LRU cache for MkNNQ — the paper's configuration at reduced "
        "cardinality.  Compdists and PA are exact counts; CPU times are "
        "pure-Python and only their *ordering* is meaningful.\n\n"
        f"Generated by `python benchmarks/run_experiments.py` in {elapsed:.0f}s.\n\n"
    )
    args.out.write_text(header + "\n".join(sections))
    print(f"wrote {args.out} ({elapsed:.0f}s total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
