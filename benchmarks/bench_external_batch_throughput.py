"""External-category batch engine: regression gates.

Not a paper experiment -- this guards the repo's own external batch layer
(``repro.external.batch`` + the per-index ``*_query_many`` overrides):

* the external category must answer a whole MRQ workload measurably
  faster through the shared-traversal batch path than through the
  one-query-at-a-time loop, with bit-for-bit identical answers (asserted
  inside :func:`repro.bench.run_batch_comparison`).  The wall-clock floor
  is asserted on the M-index* (the paper's second contribution and the
  category's MBB showcase) over LA and Synthetic;
* the SPB-tree's batch MRQ must do its grouped page reads: fewer page
  accesses than the sequential loop from identical cold pools, with the
  saved I/O visible as ``grouped_hits``.  That gate is on deterministic
  PA counters, not wall clock -- the batch descent either reads each
  touched B+-tree/RAF page once per batch or it does not.

The batch sizes here are serving-shaped (16 queries -- the amortisation
the engine exists for), independent of the tiny REPRO_BENCH_QUERIES used
by the per-query paper benches.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    build_all,
    format_table,
    make_workload,
    run_batch_comparison,
    run_page_access_comparison,
)

from _bench_common import BENCH_N, emit  # noqa: F401

GATED = ("LA", "Synthetic")
N_QUERIES = int(os.environ.get("REPRO_EXTERNAL_BATCH_QUERIES", "16"))
# measured at n=600..2000: M-index* MRQ 35-50x (the sequential loop
# re-reads B+-tree/RAF pages per query that the batch reads once), so 2.0
# only trips on real regressions even on noisy shared CI runners
MIN_MINDEX_MRQ_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def external_workloads():
    return {name: make_workload(name, n=BENCH_N, n_queries=N_QUERIES) for name in GATED}


@pytest.fixture(scope="module")
def external_built(external_workloads):
    return {
        name: build_all(workload, ("M-index*", "SPB-tree"))
        for name, workload in external_workloads.items()
    }


def test_external_batch_throughput(external_workloads, external_built, benchmark):
    rows = []
    for name, workload in external_workloads.items():
        radius = workload.radius_for(0.16)
        row = run_batch_comparison(
            external_built[name]["M-index*"].index,
            workload.queries,
            radius,
            10,
            repeats=3,
        )
        rows.append({"Dataset": name, **row})
    emit(
        "external_batch_throughput",
        format_table(
            rows,
            title=f"External batch engine: M-index* q/s, {N_QUERIES}-query batches",
            first_column="Dataset",
        ),
    )
    for row in rows:
        assert row["MRQ speedup"] >= MIN_MINDEX_MRQ_SPEEDUP, row
    workload = external_workloads["LA"]
    index = external_built["LA"]["M-index*"].index
    benchmark(index.range_query_many, workload.queries, workload.radius_for(0.16))


def test_spbtree_grouped_page_reads(external_workloads, external_built):
    rows = []
    for name, workload in external_workloads.items():
        radius = workload.radius_for(0.16)
        row = run_page_access_comparison(
            external_built[name]["SPB-tree"].index, workload.queries, radius
        )
        rows.append({"Dataset": name, **row})
    emit(
        "spbtree_grouped_paging",
        format_table(
            rows,
            title="SPB-tree grouped batch reads: page accesses per batch",
            first_column="Dataset",
        ),
    )
    for row in rows:
        assert row["batch PA"] < row["seq PA"], row
        # the saved I/O must show up as grouped hits, not vanish
        assert row["grouped hits"] > 0, row
