"""Cluster scale-out: 4 shard backends vs one single-process server.

Not a paper experiment -- this guards the repo's multi-process serving
cluster (:mod:`repro.service.cluster`).  One ``HttpQueryServer`` process
is GIL-bound, so scattering a Color MRQ batch over 4 shard backend
*processes* should approach the core count.  The gate:

* **exactness (always)** -- the routed batch answers (binary codec end to
  end) must be bit-for-bit the single-process server's answers AND the
  in-process ``ShardedIndex`` answers, for MRQ and MkNNQ;
* **throughput (>= 2x, gated only on >= 4 cores)** -- the 4-shard
  cluster's batch MRQ wall time, min of 3 runs each side, must be at
  least ``REPRO_BENCH_CLUSTER_MIN_SPEEDUP`` (default 2.0) times faster
  than the identical batch against one process hosting the whole index.
  On fewer than 4 cores the backends time-slice a single CPU and the
  ratio measures the scheduler, not the cluster -- the speedup assertion
  is skipped there (CI runners have >= 4).

Both sides serve with the result cache off and talk the binary codec, so
the comparison measures evaluation + scatter-gather, not a dict lookup.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import CostCounters, MetricSpace, save_index, select_pivots
from repro.core.sharded import ShardedIndex
from repro.service.cluster import ClusterSupervisor, save_split
from repro.service.http import ServiceClient
from repro.tables import LAESA

from _bench_common import emit, workloads  # noqa: F401  (fixture)

N_SHARDS = 4
N_PIVOTS = 4
REPEATS = 3
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_CLUSTER_MIN_SPEEDUP", "2.0"))


def _build_shard(space):
    return LAESA.build(space, select_pivots(space, N_PIVOTS, strategy="hfi", seed=0))


def _spawn_single_server(snapshot: Path, port_file: Path) -> subprocess.Popen:
    """One `repro serve` child hosting the whole index (the baseline)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    paths = env.get("PYTHONPATH", "")
    if src not in paths.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + paths if paths else "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snapshot",
            str(snapshot),
            "--http",
            "0",
            "--port-file",
            str(port_file),
            "--cache-size",
            "0",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=env,
    )


def _await_port(port_file: Path, process: subprocess.Popen, timeout_s: float) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            stderr = (process.stderr.read() or b"").decode("utf-8", "replace")
            raise RuntimeError(f"baseline server died during startup:\n{stderr[-2000:]}")
        try:
            text = port_file.read_text().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise RuntimeError("baseline server never published its port")


def _min_wall_ms(call, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        call()
        best = min(best, (time.perf_counter() - t0) * 1000.0)
    return best


def test_cluster_throughput(workloads, tmp_path):
    workload = workloads["Color"]
    radius = workload.radius_for(0.16)
    queries = list(workload.queries)
    k = 10

    space = MetricSpace(workload.dataset, CostCounters())
    sharded = ShardedIndex.build(space, _build_shard, n_shards=N_SHARDS, seed=0)
    want_range = sharded.range_query_many(queries, radius)
    want_knn = sharded.knn_query_many(queries, k)

    full_snap = tmp_path / "color.snap"
    save_index(sharded, full_snap)
    manifest = save_split(sharded, tmp_path / "color-split" / "color.snap")
    shard_snaps = [
        str(manifest.parent / f"color.shard{i:02d}.snap") for i in range(N_SHARDS)
    ]

    # -- baseline: one process hosting the whole ShardedIndex ----------------
    port_file = tmp_path / "single.port"
    single = _spawn_single_server(full_snap, port_file)
    try:
        port = _await_port(port_file, single, timeout_s=120.0)
        with ServiceClient(port=port, binary=True, timeout=120.0) as client:
            got_range = client.range_query_many(queries, radius)
            assert got_range == want_range, "single-process MRQ diverged"
            assert client.knn_query_many(queries, k) == want_knn
            single_ms = _min_wall_ms(
                lambda: client.range_query_many(queries, radius)
            )
    finally:
        single.terminate()
        single.wait(timeout=30)
        single.stderr.close()

    # -- cluster: router + one backend process per shard ---------------------
    supervisor = ClusterSupervisor(
        snapshots=shard_snaps,
        mode="shard",
        cache_size=0,
        probe_interval_s=0,
        startup_timeout_s=240.0,
    )
    with supervisor:
        router = supervisor.router
        with ServiceClient(router.host, router.port, binary=True, timeout=120.0) as client:
            got_range = client.range_query_many(queries, radius)
            assert got_range == want_range, "routed MRQ diverged from ShardedIndex"
            assert client.knn_query_many(queries, k) == want_knn, (
                "routed MkNNQ diverged from ShardedIndex"
            )
            cluster_ms = _min_wall_ms(
                lambda: client.range_query_many(queries, radius)
            )

    speedup = single_ms / cluster_ms if cluster_ms > 0 else float("inf")
    cores = os.cpu_count() or 1
    emit(
        "cluster_throughput",
        "\n".join(
            [
                f"Color MRQ batch ({len(queries)} queries, {N_SHARDS} shards, "
                f"{cores} cores, min of {REPEATS})",
                f"  single process : {single_ms:8.2f} ms",
                f"  4-shard cluster: {cluster_ms:8.2f} ms",
                f"  speedup        : {speedup:8.2f}x  (gate: >= {MIN_SPEEDUP}x "
                f"on >= {N_SHARDS} cores)",
            ]
        ),
    )
    if cores >= N_SHARDS:
        assert speedup >= MIN_SPEEDUP, (
            f"cluster speedup {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"(single {single_ms:.1f} ms vs cluster {cluster_ms:.1f} ms)"
        )
