"""Figure 17: MkNNQ performance vs k for all indexes on all datasets.

Paper shapes: cost grows with k; the in-memory indexes beat the disk
indexes on CPU; LAESA/CPT verify in storage order and pay extra compdists
relative to best-first competitors; the SPB-tree has the best PA.
"""

from __future__ import annotations

import pytest

from repro.bench import ascii_chart, format_table, run_knn_queries, series_from_rows

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

KS = (5, 10, 20, 50, 100)


@pytest.fixture(scope="module")
def fig17(workloads, built_indexes):
    rows = []
    for wl_name, workload in workloads.items():
        indexes = built_indexes(wl_name)
        for index_name, result in indexes.items():
            for k in KS:
                cost = run_knn_queries(result.index, workload.queries, k)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "k": k,
                        "Compdists": round(cost.compdists, 1),
                        "PA": round(cost.page_accesses, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows


def test_fig17_knn_query_costs(fig17, benchmark, workloads, built_indexes):
    charts = []
    for wl_name in workloads:
        wl_rows = [r for r in fig17 if r["Dataset"] == wl_name]
        charts.append(
            ascii_chart(
                series_from_rows(wl_rows, "k", "Compdists"),
                title=f"Figure 17 ({wl_name}): MkNNQ compdists vs k",
                log_y=True,
            )
        )
    emit(
        "fig17_knn",
        format_table(fig17, title="Figure 17: MkNNQ cost vs k", first_column="Dataset")
        + "\n\n"
        + "\n\n".join(charts),
    )
    by = {(r["Dataset"], r["Index"], r["k"]): r for r in fig17}
    for wl_name in workloads:
        for index_name in ("LAESA", "MVPT", "SPB-tree"):
            assert (
                by[(wl_name, index_name, 100)]["Compdists"]
                >= by[(wl_name, index_name, 5)]["Compdists"]
            )
        # memory indexes touch no pages
        assert by[(wl_name, "MVPT", 20)]["PA"] == 0
    index = built_indexes("Words")["MVPT"].index
    q = workloads["Words"].queries[0]
    benchmark(lambda: index.knn_query(q, 20))
