"""Tables 6 + 7: update (delete + reinsert) costs and rankings.

Paper shapes (Section 6.3): trees (BKT/FQT/MVPT) cheapest in time;
EPT/EPT* costliest in compdists (per-object pivot selection); LAESA pays a
sequential scan but few computations; SPB-tree / M-index* cheap on PA.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    exp_table7_ranking,
    format_ranking,
    format_table,
    run_updates,
)

from _bench_common import N_QUERIES, built_indexes, emit, workloads  # noqa: F401  (fixtures)

N_UPDATES = max(10, N_QUERIES)


@pytest.fixture(scope="module")
def table6(workloads, built_indexes):
    rows = []
    for wl_name in ("LA", "Words"):
        indexes = built_indexes(wl_name)
        victims = list(range(10, 10 + N_UPDATES))
        for index_name, result in indexes.items():
            cost = run_updates(result.index, victims)
            rows.append(
                {
                    "Dataset": wl_name,
                    "Index": index_name,
                    "PA": round(cost.page_accesses, 1),
                    "Compdists": round(cost.compdists, 1),
                    "Time (ms)": round(cost.cpu_seconds * 1000, 3),
                }
            )
    return rows


def test_table6_update_costs(table6, benchmark, workloads, built_indexes):
    emit(
        "table6_updates",
        format_table(table6, title="Table 6: update costs", first_column="Dataset"),
    )
    by_key = {(r["Dataset"], r["Index"]): r for r in table6}
    for wl_name in ("LA", "Words"):
        # EPT(*) update compdists dominate everyone else's (paper Table 6)
        assert (
            by_key[(wl_name, "EPT*")]["Compdists"]
            > by_key[(wl_name, "MVPT")]["Compdists"]
        )
        # LAESA deletes by scan: few computations
        assert by_key[(wl_name, "LAESA")]["Compdists"] <= 2 * 5 + 1
    index = built_indexes("Words")["MVPT"].index
    benchmark.pedantic(
        lambda: run_updates(index, [40, 41, 42]), rounds=3, iterations=1
    )


def test_table7_update_ranking(table6, benchmark):
    metrics = exp_table7_ranking(table6)
    # normalise key names for the ranking helper
    lines = []
    for metric, scores in metrics.items():
        if scores:
            lines.append(format_ranking(scores, metric))
    emit("table7_ranking", "Table 7: update-cost ranking\n" + "\n".join(lines))
    benchmark.pedantic(lambda: exp_table7_ranking(table6), rounds=3, iterations=1)
