"""Figure 14: EPT vs EPT* -- MkNNQ compdists and CPU time vs k.

Paper shape: EPT* computes fewer distances than EPT across k on every
dataset (its PSA pivots are higher quality), at a much higher construction
cost (checked in the Table 4 bench).
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, measure_build, run_knn_queries, shared_pivots

from _bench_common import built_indexes, emit, workloads  # noqa: F401  (fixtures)

KS = (5, 10, 20, 50, 100)


@pytest.fixture(scope="module")
def fig14(workloads):
    rows = []
    per_index = {}
    for wl_name, workload in workloads.items():
        pivots = shared_pivots(workload, 5)
        for index_name in ("EPT", "EPT*"):
            result = measure_build(index_name, workload, pivots)
            per_index[(wl_name, index_name)] = result.index
            for k in KS:
                cost = run_knn_queries(result.index, workload.queries, k)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "k": k,
                        "Compdists": round(cost.compdists, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows, per_index


def test_fig14_ept_vs_ept_star(fig14, benchmark, workloads):
    rows, per_index = fig14
    emit(
        "fig14_ept_star",
        format_table(rows, title="Figure 14: EPT vs EPT* (MkNNQ vs k)", first_column="Dataset"),
    )
    # shape: EPT* verification work <= EPT's on the vector datasets, where
    # pivot quality matters most (allowing the fixed |CP| upfront cost)
    by = {(r["Dataset"], r["Index"], r["k"]): r["Compdists"] for r in rows}
    for wl_name in ("Color", "Synthetic"):
        star = sum(by[(wl_name, "EPT*", k)] for k in KS)
        plain = sum(by[(wl_name, "EPT", k)] for k in KS)
        assert star <= plain * 1.3, f"EPT* not competitive on {wl_name}"
    index = per_index[("LA", "EPT*")]
    q = workloads["LA"].queries[0]
    benchmark(lambda: index.knn_query(q, 20))
