#!/usr/bin/env python3
"""HTTP quickstart: snapshot an index, serve it over HTTP, query it remotely.

The network half of the serving story (`serve_quickstart.py` covers the
in-process half):

1. build a pivot index once and snapshot it to disk,
2. start an :class:`~repro.service.http.HttpQueryServer` over a
   ``QueryService`` restored from the snapshot -- exactly what
   ``python -m repro serve --http PORT --snapshot PATH`` runs,
3. drive it with concurrent :class:`~repro.service.ServiceClient` callers:
   single queries coalesce in the micro-batching dispatcher, repeats are
   absorbed by the LRU cache, and every answer is bit-for-bit the direct
   in-process answer,
4. shut down gracefully (in-flight requests drain before the socket closes).

Serving vectors instead of strings?  ``ServiceClient(port=..., binary=True)``
negotiates the binary wire protocol (``repro.service.wire``): query batches
travel as one raw float64 matrix and answers come back as columnar buffers
-- same API, same bit-for-bit answers, none of the JSON codec tax.

Observability: share one :class:`~repro.obs.MetricsRegistry` between the
service and the server (as below, or ``repro serve --http PORT --metrics``)
and ``GET /metrics`` serves Prometheus text while ``/stats`` grows
percentile digests under ``"telemetry"`` -- ``repro stats URL [--metrics]``
fetches either from a shell.  Add ``--slow-query-ms N`` to log each slow
request's span tree with its exact share of the batch costs.

Run:  python examples/http_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import (
    CostCounters,
    HttpQueryServer,
    MetricSpace,
    MetricsRegistry,
    QueryService,
    ServiceClient,
    make_words,
    save_index,
    select_pivots,
)
from repro.tables import LAESA


def main() -> None:
    # -- 1. build once, snapshot to disk ------------------------------------
    words = make_words(3000, seed=7)
    space = MetricSpace(words, CostCounters())
    index = LAESA.build(space, select_pivots(MetricSpace(words), 5, strategy="hfi"))

    with tempfile.TemporaryDirectory() as tmp:
        snap_path = Path(tmp) / "laesa.snap"
        save_index(index, snap_path)
        print(f"snapshot written: {snap_path.name}")

        # -- 2. restore and serve over HTTP, telemetry on --------------------
        # one registry shared by service + server == `repro serve --metrics`
        metrics = MetricsRegistry()
        service = QueryService.from_snapshot(
            snap_path, max_batch_size=16, metrics=metrics
        )
        with service, HttpQueryServer(service, port=0, metrics=metrics).start() \
                as server, ServiceClient(port=server.port) as client:
            print(f"serving at http://{server.host}:{server.port}")
            print(f"healthz: {client.healthz()}")

            # -- 3. concurrent clients, mixed MRQ/MkNNQ ----------------------
            sample = [words[i] for i in range(20)]

            def one_client(i: int):
                q = sample[i % len(sample)]
                return client.range_query(q, 2.0), client.knn_query(q, k=5)

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=8) as clients:
                answers = list(clients.map(one_client, range(80)))
            seconds = time.perf_counter() - t0

            # every wire answer is bit-for-bit the direct in-process answer
            hits, nearest = answers[0]
            direct = service.range_query(sample[0], 2.0)
            assert hits == direct, "wire answers must equal direct answers"
            print(
                f"served {2 * len(answers)} requests in {seconds:.2f}s "
                f"({2 * len(answers) / seconds:.0f} req/s) over loopback HTTP"
            )
            print(
                f"sample: {len(hits)} words within edit distance 2, "
                f"nearest neighbor at distance {nearest[0].distance:.0f}"
            )

            stats = client.stats()
            print(
                f"cache hit rate {stats['cache']['hit_rate']:.0%}; "
                f"dispatcher coalesced {stats['dispatcher']['queries']} queries "
                f"into {stats['dispatcher']['batches']} batches; "
                f"http served {stats['http']['served']} "
                f"(rejected {stats['http']['rejected']})"
            )
            latency = stats["telemetry"]["repro_http_request_ms"]["/range"]
            print(
                f"/range latency: p50 {latency['p50']:.2f} ms, "
                f"p99 {latency['p99']:.2f} ms over {latency['count']} requests"
            )
            scrape = client.metrics_text()  # what GET /metrics serves
            print(f"/metrics: {len(scrape.splitlines())} Prometheus text lines")

        # -- 4. the context managers drained and closed everything ----------
        print("shut down cleanly: requests drained, dispatcher joined, socket closed")


if __name__ == "__main__":
    main()
