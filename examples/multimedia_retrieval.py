#!/usr/bin/env python3
"""Multimedia retrieval: content-based image search over MPEG-7 features.

The paper's Color workload: 282-dimensional image feature vectors compared
with the L1 distance.  This example builds the SPB-tree (the paper's pick
for large datasets) next to a plain LAESA table, runs the same k-NN
retrieval on both, and shows the cost split the paper's Figure 17 reports:
the table computes the fewest distances, the SPB-tree trades a few more
for a small, paged disk layout.

Run:  python examples/multimedia_retrieval.py
"""

from __future__ import annotations

from repro import CostCounters, MetricSpace, make_color, select_pivots
from repro.external import SPBTree
from repro.tables import LAESA


def knn_cost(index, query, k):
    counters = index.space.counters
    before_comp = counters.distance_computations
    before_pa = counters.page_reads + counters.page_writes
    result = index.knn_query(query, k)
    return (
        result,
        counters.distance_computations - before_comp,
        counters.page_reads + counters.page_writes - before_pa,
    )


def main() -> None:
    # "image library": low intrinsic dimension embedded in 282 dims, like
    # real MPEG-7 colour structure descriptors
    library = make_color(4000, seed=13)
    print(f"library: {len(library)} feature vectors, dim 282, distance L1")

    pivots = select_pivots(MetricSpace(library), 5, strategy="hfi")

    laesa = LAESA.build(MetricSpace(library, CostCounters()), pivots)
    spb = SPBTree.build(MetricSpace(library, CostCounters()), pivots)

    query_image = library[42]
    print("\nquery: feature vector of image #42, retrieving 10 most similar\n")
    header = f"{'index':10} {'compdists':>10} {'page accesses':>14} {'storage':>12}"
    print(header)
    print("-" * len(header))
    for index in (laesa, spb):
        result, compdists, pa = knn_cost(index, query_image, k=10)
        storage = index.storage_bytes()
        where = "memory" if storage["disk"] == 0 else "disk"
        size = max(storage["memory"], storage["disk"]) / 1024
        print(
            f"{index.name:10} {compdists:>10} {pa:>14} {size:>8.0f} KB ({where})"
        )
        ids = [n.object_id for n in result]
        assert ids[0] == 42  # the image itself is its own nearest neighbour

    result, compdists, _ = knn_cost(laesa, query_image, k=10)
    print(
        f"\nbrute force would compute {len(library)} distances; "
        f"pivot filtering verified only {compdists} "
        f"({100 * compdists / len(library):.1f}%)"
    )
    print("top matches:", [n.object_id for n in result][:5])


if __name__ == "__main__":
    main()
