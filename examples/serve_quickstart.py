#!/usr/bin/env python3
"""Serve quickstart: build once, snapshot, restore, serve concurrent traffic.

Walks the full query-service lifecycle the README describes:

1. build a pivot index (paying the construction distance computations once),
2. snapshot it to disk,
3. restore it in a "new process" with zero distance computations,
4. serve concurrent single-query traffic through the QueryService --
   the micro-batching dispatcher coalesces callers into vectorised batch
   calls and the LRU result cache absorbs the repeats.

Run:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import (
    CostCounters,
    MetricSpace,
    QueryService,
    load_index,
    make_words,
    save_index,
    select_pivots,
    snapshot_info,
)
from repro.tables import LAESA


def main() -> None:
    # -- 1. build once (the expensive part) ---------------------------------
    words = make_words(4000, seed=7)
    counters = CostCounters()
    space = MetricSpace(words, counters)
    pivots = select_pivots(space, 5, strategy="hfi")
    index = LAESA.build(space, pivots)
    print(
        f"built LAESA over {len(words)} words: "
        f"{counters.distance_computations} build distance computations"
    )

    with tempfile.TemporaryDirectory() as tmp:
        snap_path = Path(tmp) / "laesa.snap"

        # -- 2. snapshot to disk --------------------------------------------
        info = save_index(index, snap_path)
        print(f"snapshot: {info.payload_bytes} bytes, format v{info.format_version}")
        print(f"header:   {snapshot_info(snap_path).row()}")

        # -- 3. restore (a fresh process would do exactly this) -------------
        restore_counters = CostCounters()
        restored = load_index(snap_path, counters=restore_counters)
        print(
            f"restored with {restore_counters.distance_computations} distance "
            "computations -- the build cost is paid exactly once"
        )

    # -- 4. serve concurrent single-query traffic ---------------------------
    # 25 distinct queries, each repeated 8 times: the shape of online
    # traffic, where popular queries recur
    queries = [words[i] for i in range(25)] * 8
    with QueryService(restored, max_batch_size=16, max_wait_ms=2.0) as service:
        with ThreadPoolExecutor(max_workers=8) as clients:
            t0 = time.perf_counter()
            answers = list(
                clients.map(lambda q: service.range_query(q, 2.0), queries)
            )
            seconds = time.perf_counter() - t0
        stats = service.stats()

    print(
        f"served {len(queries)} requests in {seconds:.2f}s "
        f"({len(queries) / seconds:.0f} req/s) from 8 concurrent clients"
    )
    cache = stats["cache"]
    dispatcher = stats["dispatcher"]
    print(
        f"cache: hit rate {cache['hit_rate']:.0%} "
        f"({cache['hits']} hits / {cache['misses']} misses)"
    )
    print(
        f"dispatcher: {dispatcher['batches']} vectorised batches, "
        f"mean size {dispatcher['mean_batch_size']}, "
        f"largest {dispatcher['largest_batch']}"
    )
    sample = answers[0]
    print(f"sample answer: {len(sample)} words within edit distance 2 of {words[0]!r}")


if __name__ == "__main__":
    main()
