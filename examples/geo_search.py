#!/usr/bin/env python3
"""Geographic search: radius lookups over a city-scale point set.

The paper's LA workload: two-dimensional locations under the Euclidean
distance.  A delivery service wants every depot within r metres of a
customer -- a metric range query.  We compare the three disk-resident
designs the paper recommends considering at scale (OmniR-tree, M-index*,
SPB-tree) on page accesses, then demonstrate dynamic updates.

Run:  python examples/geo_search.py
"""

from __future__ import annotations

import numpy as np

from repro import CostCounters, MetricSpace, make_la, select_pivots
from repro.external import MIndexStar, OmniRTree, SPBTree


def main() -> None:
    city = make_la(8000, seed=3)
    print(f"map: {len(city)} locations in [0, 10000]^2, distance L2")

    pivots = select_pivots(MetricSpace(city), 5, strategy="hfi")
    indexes = [
        OmniRTree.build(MetricSpace(city, CostCounters()), pivots),
        MIndexStar.build(MetricSpace(city, CostCounters()), pivots),
        SPBTree.build(MetricSpace(city, CostCounters()), pivots),
    ]

    customer = np.array([5200.0, 4800.0])
    radius = 400.0
    print(f"\nMRQ: depots within {radius:.0f} m of {customer.tolist()}\n")
    header = f"{'index':12} {'answers':>8} {'compdists':>10} {'page accesses':>14}"
    print(header)
    print("-" * len(header))
    answers = None
    for index in indexes:
        counters = index.space.counters
        counters.reset()
        hits = index.range_query(customer, radius)
        pa = counters.page_reads + counters.page_writes
        print(
            f"{index.name:12} {len(hits):>8} "
            f"{counters.distance_computations:>10} {pa:>14}"
        )
        if answers is None:
            answers = hits
        else:
            assert hits == answers  # all indexes agree exactly

    # dynamic scenario: a depot closes, another opens at the same id
    spb = indexes[2]
    closed = answers[0]
    spb.delete(closed)
    assert closed not in spb.range_query(customer, radius)
    spb.insert(city[closed], object_id=closed)
    assert closed in spb.range_query(customer, radius)
    print(f"\nupdate check: depot {closed} closed and reopened -- answers intact")

    # k nearest depots for dispatch
    nearest = spb.knn_query(customer, k=5)
    print("\n5 nearest depots (id, metres):")
    for n in nearest:
        print(f"  #{n.object_id:5d}  {n.distance:7.1f}")


if __name__ == "__main__":
    main()
