#!/usr/bin/env python3
"""Spell checking with a BK-tree: the classic discrete-metric application.

Burkhard and Keller built their 1973 structure for "best-match file
searching" -- exactly the spell-suggestion problem.  This example indexes a
vocabulary under edit distance with the paper's BKT and FQT and suggests
corrections for misspelled words, counting how few distance computations
the triangle inequality leaves.

Run:  python examples/spell_checker.py
"""

from __future__ import annotations

from repro import CostCounters, MetricSpace, make_words, select_pivots
from repro.trees import BKT, FQT


def suggest(index, word: str, max_edits: int = 2, limit: int = 5):
    """Correction candidates within ``max_edits``, nearest first."""
    counters = index.space.counters
    before = counters.distance_computations
    hits = index.range_query(word, max_edits)
    cost = counters.distance_computations - before
    dataset = index.space.dataset
    ranked = sorted(hits, key=lambda i: (dataset.distance(word, dataset[i]), dataset[i]))
    return [dataset[i] for i in ranked[:limit]], cost


def main() -> None:
    vocabulary = make_words(8000, seed=17)
    for w in ("constriction", "construction", "contraction", "distribution",
              "distributed", "metric", "metrics"):
        vocabulary.add(w)
    print(f"vocabulary: {len(vocabulary)} words")

    space = MetricSpace(vocabulary, CostCounters())
    bkt = BKT.build(space, seed=1)

    fqt_space = MetricSpace(vocabulary, CostCounters())
    pivots = select_pivots(fqt_space, 5, strategy="hfi")
    fqt = FQT.build(fqt_space, pivots)

    for typo in ("metrik", "constrution", "distribuiton"):
        print(f"\n'{typo}':")
        for index in (bkt, fqt):
            suggestions, cost = suggest(index, typo)
            shown = ", ".join(suggestions) if suggestions else "(no suggestion)"
            print(
                f"  {index.name}: {shown}"
                f"   [{cost} of {len(vocabulary)} words compared]"
            )

    # the two trees must agree -- they answer the same metric query
    a, _ = suggest(bkt, "metrik")
    b, _ = suggest(fqt, "metrik")
    assert a == b
    print("\nBKT and FQT agree on every suggestion (same metric query).")


if __name__ == "__main__":
    main()
