#!/usr/bin/env python3
"""Which index should I use?  The paper's Section 7 guidance, measured live.

The study's conclusions, paraphrased:

* small dataset + expensive distance function  -> EPT* (fewest compdists);
* small dataset + cheap distance function      -> MVPT (lowest CPU);
* large / disk-resident dataset                -> SPB-tree or M-index*.

This example builds the recommended candidates (plus LAESA as the baseline)
on a workload you choose, measures exactly the paper's three metrics, and
prints the recommendation that the measurements support.

Run:  python examples/index_selection.py [LA|Words|Color|Synthetic]
"""

from __future__ import annotations

import sys

from repro.bench import (
    format_table,
    make_workload,
    measure_build,
    run_knn_queries,
    shared_pivots,
)

CANDIDATES = ("LAESA", "EPT*", "MVPT", "OmniR-tree", "M-index*", "SPB-tree")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Words"
    workload = make_workload(name, n=4000, n_queries=10)
    pivots = shared_pivots(workload, 5)
    print(f"workload: {workload.name} (n={len(workload.dataset)}), MkNNQ k=20\n")

    rows = []
    measured = {}
    for index_name in CANDIDATES:
        build = measure_build(index_name, workload, pivots)
        cost = run_knn_queries(build.index, workload.queries, k=20)
        measured[index_name] = cost
        rows.append(
            {
                "Index": index_name,
                "Build comp": build.compdists,
                "Build s": round(build.seconds, 2),
                "kNN comp": round(cost.compdists, 1),
                "kNN PA": round(cost.page_accesses, 1),
                "kNN ms": round(cost.cpu_seconds * 1000, 2),
                "Where": "disk" if build.index.is_disk_based else "memory",
            }
        )
    print(format_table(rows, first_column="Index"))

    fewest_comp = min(measured, key=lambda n: measured[n].compdists)
    fastest = min(measured, key=lambda n: measured[n].cpu_seconds)
    disk_best = min(
        (n for n, r in zip(CANDIDATES, rows) if r["Where"] == "disk"),
        key=lambda n: measured[n].page_accesses,
    )
    print(
        f"\nmeasured guidance for {workload.name}:"
        f"\n  expensive distance function (minimise compdists) -> {fewest_comp}"
        f"\n  cheap distance function (minimise CPU)           -> {fastest}"
        f"\n  dataset exceeds memory (minimise PA)             -> {disk_best}"
        "\n\npaper's Section 7: EPT* for small data + costly metrics, MVPT for"
        "\nsmall data + cheap metrics, SPB-tree / M-index* for large data."
    )


if __name__ == "__main__":
    main()
