#!/usr/bin/env python3
"""Quickstart: metric similarity search in five minutes.

Recreates the paper's running example (Section 2.1): an English word
collection under edit distance, a metric range query MRQ("defoliate", 1)
and a metric k-NN query MkNNQ("defoliate", 2) -- answered by an index that
never compares most of the words.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CostCounters,
    Dataset,
    EditDistance,
    MetricSpace,
    make_words,
    select_pivots,
)
from repro.trees import MVPT


def main() -> None:
    # -- 1. a metric space: objects + a distance with the metric axioms -----
    words = make_words(5000, seed=7)
    # plant the paper's example family so the queries below are meaningful
    for w in ("defoliates", "defoliation", "defoliating", "defoliated", "citrate"):
        words.add(w)

    counters = CostCounters()
    space = MetricSpace(words, counters)
    print(f"dataset: {len(words)} words, distance = {words.distance.name}")

    # -- 2. pick pivots and build an index ----------------------------------
    # HFI is the selection strategy the paper uses for its whole study.
    pivots = select_pivots(space, 5, strategy="hfi")
    index = MVPT.build(space, pivots)
    build_cost = counters.distance_computations
    print(f"built MVPT with pivots {pivots} ({build_cost} distance computations)")

    # -- 3. metric range query ------------------------------------------------
    counters.reset()
    hits = index.range_query("defoliate", radius=1)
    print(
        f"\nMRQ('defoliate', r=1) -> {[words[i] for i in hits]}"
        f"\n  verified with {counters.distance_computations} distance "
        f"computations instead of {len(words)} (brute force)"
    )

    # -- 4. metric k nearest neighbour query ----------------------------------
    counters.reset()
    nearest = index.knn_query("defoliate", k=2)
    print(
        f"\nMkNNQ('defoliate', k=2) -> "
        f"{[(words[n.object_id], int(n.distance)) for n in nearest]}"
        f"\n  verified with {counters.distance_computations} distance computations"
    )

    # -- 5. batch queries: many MRQ/MkNNQ at once ------------------------------
    # Production workloads issue queries in batches.  Every index accepts a
    # whole batch via range_query_many / knn_query_many; the table indexes
    # (LAESA & friends) answer it through one vectorised query-pivot distance
    # matrix -- same exact answers, far higher throughput.
    from repro.tables import LAESA

    table = LAESA.build(space, pivots)
    batch = ["defoliate", "citrate", "metric"]
    counters.reset()
    all_hits = table.range_query_many(batch, radius=1)
    for query, hits in zip(batch, all_hits):
        print(f"\nbatch MRQ({query!r}, r=1) -> {[words[i] for i in hits]}")
    all_nearest = table.knn_query_many(batch, k=2)
    print(
        f"batch MkNNQ(k=2) nearest: "
        f"{[words[n[0].object_id] for n in all_nearest]}"
        f"\n  whole batch served with {counters.distance_computations} "
        f"distance computations"
    )

    # -- 6. bring your own data ------------------------------------------------
    inventory = Dataset(
        ["metric", "median", "medium", "matrix", "metrics"], EditDistance()
    )
    my_space = MetricSpace(inventory)
    my_index = MVPT.build(my_space, select_pivots(my_space, 2, strategy="hfi"))
    print(
        "\ncustom dataset, MkNNQ('metrik', 2) ->",
        [(inventory[n.object_id], int(n.distance)) for n in my_index.knn_query("metrik", 2)],
    )


if __name__ == "__main__":
    main()
