#!/usr/bin/env python3
"""Nearest-neighbour classification over a metric index.

The paper's introduction motivates metric search with pattern recognition:
"similarity queries can be used to classify a new object according to the
labels of already classified nearest neighbors."  This example builds that
classifier: a majority vote over MkNNQ(q, k), with the index (not a linear
scan) doing the neighbour search.

Run:  python examples/knn_classifier.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import CostCounters, Dataset, L2, MetricSpace, select_pivots
from repro.external import SPBTree


def make_labelled_blobs(n_per_class: int, seed: int = 5):
    """Three Gaussian classes in the plane (a toy pattern-recognition task)."""
    rng = np.random.default_rng(seed)
    centers = {"ring": (2000, 2000), "spur": (7000, 3000), "vale": (4500, 7500)}
    points, labels = [], []
    for label, center in centers.items():
        pts = rng.normal(center, 600, size=(n_per_class, 2))
        points.append(pts)
        labels.extend([label] * n_per_class)
    return np.clip(np.concatenate(points), 0, 10_000), labels


class KnnClassifier:
    """Majority-vote k-NN classifier on top of any metric index."""

    def __init__(self, index, labels: list[str], k: int = 7):
        self.index = index
        self.labels = labels
        self.k = k

    def predict(self, obj) -> str:
        votes = Counter(
            self.labels[n.object_id] for n in self.index.knn_query(obj, self.k)
        )
        return votes.most_common(1)[0][0]


def main() -> None:
    points, labels = make_labelled_blobs(n_per_class=800)
    train = Dataset(points, L2, name="blobs")
    counters = CostCounters()
    space = MetricSpace(train, counters)
    index = SPBTree.build(space, select_pivots(MetricSpace(train), 4, strategy="hfi"))
    classifier = KnnClassifier(index, labels, k=7)
    print(f"training set: {len(train)} points, 3 classes; index: {index.name}")

    rng = np.random.default_rng(42)
    probes = {
        "near 'ring'": np.array([2100.0, 1900.0]),
        "near 'spur'": np.array([6800.0, 3100.0]),
        "near 'vale'": np.array([4600.0, 7400.0]),
        "between all": np.array([4500.0, 4200.0]),
    }
    print()
    for description, probe in probes.items():
        counters.reset()
        predicted = classifier.predict(probe)
        print(
            f"  {description:12} at {probe.tolist()} -> {predicted:5} "
            f"({counters.distance_computations} distance computations)"
        )

    # hold-out accuracy on fresh samples from the same blobs
    test_points, test_labels = make_labelled_blobs(n_per_class=50, seed=99)
    correct = sum(
        classifier.predict(p) == label for p, label in zip(test_points, test_labels)
    )
    total = len(test_labels)
    print(f"\nhold-out accuracy: {correct}/{total} = {correct / total:.1%}")
    assert correct / total > 0.9


if __name__ == "__main__":
    main()
