#!/usr/bin/env python3
"""Cluster quickstart: split a sharded index and serve it from N processes.

Walks the multi-process topology the README's "Cluster mode" section
describes:

1. build a ``ShardedIndex`` (N disjoint shards, one index per shard),
2. ``save_split`` it: one snapshot per shard plus a ``.cluster.json``
   manifest (``repro snapshot --split N`` is the CLI form),
3. hand the shard snapshots to a ``ClusterSupervisor``: it spawns one
   ``repro serve`` backend *process* per shard, health-checks them, and
   fronts them with a scatter-gather router,
4. query the router: answers are bit-for-bit the single-process answers,
   because the router merges with the same helpers ``ShardedIndex`` uses
   in-process.

Run:  python examples/cluster_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CostCounters, MetricSpace, ServiceClient, make_words, select_pivots
from repro.core.sharded import ShardedIndex
from repro.service.cluster import ClusterSupervisor, save_split
from repro.tables import LAESA

N_SHARDS = 3


def build_shard(space):
    """One shard's index: any index in the study works here."""
    return LAESA.build(space, select_pivots(space, 4, strategy="hfi"))


def main() -> None:
    # -- 1. build a sharded index (round-robin partition, one LAESA each) ---
    words = make_words(2000, seed=7)
    space = MetricSpace(words, CostCounters())
    sharded = ShardedIndex.build(space, build_shard, n_shards=N_SHARDS, seed=0)
    queries = [words[i] for i in range(10)]
    expected_range = sharded.range_query_many(queries, 2.0)
    expected_knn = sharded.knn_query_many(queries, 5)
    print(f"built {N_SHARDS}-shard LAESA over {len(words)} words")

    with tempfile.TemporaryDirectory() as tmp:
        # -- 2. one snapshot per shard + a cluster manifest ------------------
        manifest = save_split(sharded, Path(tmp) / "words.snap")
        shard_snaps = sorted(Path(tmp).glob("words.shard*.snap"))
        print(f"split into {len(shard_snaps)} shard snapshots + {manifest.name}")

        # -- 3. spawn one backend process per shard, router in front ---------
        supervisor = ClusterSupervisor(
            snapshots=[str(p) for p in shard_snaps],
            mode="shard",
        )
        with supervisor:
            router = supervisor.router
            print(
                f"cluster up: router at http://{router.host}:{router.port}, "
                f"{N_SHARDS} backend processes on ports {supervisor.backend_ports}"
            )

            # -- 4. routed answers == single-process answers, bit for bit ----
            with ServiceClient(router.host, router.port, binary=True) as client:
                assert client.healthz()["status"] == "ok"
                assert client.range_query_many(queries, 2.0) == expected_range
                assert client.knn_query_many(queries, 5) == expected_knn
                stats = client.stats()
            per_backend = ", ".join(
                f"shard {b['backend']}: {b['served']} calls"
                for b in stats["backends"]
            )
            print(f"scatter-gather exact over {len(queries)} queries ({per_backend})")
        print("cluster drained cleanly")


if __name__ == "__main__":
    main()
